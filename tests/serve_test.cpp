// ServingRuntime contract tests: every submitted request reaches
// exactly one terminal status (OK / REJECTED / TIMEOUT / FAILED), the
// admission queue sheds instead of blocking, deadlines cancel work
// cooperatively at node boundaries, failures are isolated per request
// with bounded degraded retries, and the conservation identities hold
// after shutdown.  Chaos coverage (injected faults, mixed traffic)
// lives in serve_chaos_test.cpp.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exec/backend_registry.hpp"
#include "exec/exec_context.hpp"
#include "exec/graph.hpp"
#include "exec/validate.hpp"
#include "serve/admission_queue.hpp"
#include "serve/request.hpp"
#include "serve/serving_runtime.hpp"
#include "tensor/ops.hpp"
#include "util/cancellation.hpp"
#include "util/rng.hpp"

namespace tilesparse::serve {
namespace {

using namespace std::chrono_literals;

MatrixF random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  MatrixF m(rows, cols);
  fill_normal(m, rng);
  return m;
}

bool bit_identical(const MatrixF& a, const MatrixF& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return a.size() == 0 ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

MatrixF scalar(float value) {
  MatrixF m(1, 1);
  m(0, 0) = value;
  return m;
}

/// Lets a test hold a worker inside a request until the queue is in a
/// known state.
struct Gate {
  std::mutex m;
  std::condition_variable cv;
  bool open = false;
  int waiting = 0;

  void wait_open() {
    std::unique_lock lock(m);
    ++waiting;
    cv.notify_all();
    cv.wait(lock, [&] { return open; });
  }
  void enter() {  // announce presence without blocking
    std::lock_guard lock(m);
    ++waiting;
    cv.notify_all();
  }
  void wait_for_waiter() {
    std::unique_lock lock(m);
    cv.wait(lock, [&] { return waiting > 0; });
  }
  void release() {
    {
      std::lock_guard lock(m);
      open = true;
    }
    cv.notify_all();
  }
};

// --------------------------------------------------- admission queue

TEST(AdmissionQueueTest, ServesHighestClassFirstFifoWithin) {
  AdmissionQueue<int> q(8);
  EXPECT_EQ(q.push(1, Priority::kBatch), PushOutcome::kAdmitted);
  EXPECT_EQ(q.push(2, Priority::kInteractive), PushOutcome::kAdmitted);
  EXPECT_EQ(q.push(3, Priority::kNormal), PushOutcome::kAdmitted);
  EXPECT_EQ(q.push(4, Priority::kInteractive), PushOutcome::kAdmitted);
  EXPECT_EQ(q.push(5, Priority::kBatch), PushOutcome::kAdmitted);

  int out = 0;
  std::vector<int> order;
  while (q.try_pop(out)) order.push_back(out);
  EXPECT_EQ(order, (std::vector<int>{2, 4, 3, 1, 5}));
}

TEST(AdmissionQueueTest, FullQueueRejectsWithoutEviction) {
  AdmissionQueue<int> q(2);
  EXPECT_EQ(q.push(1, Priority::kNormal), PushOutcome::kAdmitted);
  EXPECT_EQ(q.push(2, Priority::kNormal), PushOutcome::kAdmitted);
  EXPECT_EQ(q.push(3, Priority::kInteractive), PushOutcome::kRejectedFull);
  EXPECT_EQ(q.size(), 2u);
}

TEST(AdmissionQueueTest, EvictsNewestOfLowestStrictlyLowerClass) {
  AdmissionQueue<int> q(3);
  ASSERT_EQ(q.push(10, Priority::kBatch), PushOutcome::kAdmitted);
  ASSERT_EQ(q.push(11, Priority::kBatch), PushOutcome::kAdmitted);
  ASSERT_EQ(q.push(20, Priority::kNormal), PushOutcome::kAdmitted);

  int shed = 0;
  EXPECT_EQ(q.push(30, Priority::kInteractive, &shed),
            PushOutcome::kAdmittedAfterEvict);
  EXPECT_EQ(shed, 11);  // newest batch entry, not the normal one
  EXPECT_EQ(q.size(), 3u);

  // Same-class arrivals never evict: nothing strictly lower remains
  // once only normal+interactive entries are left.
  ASSERT_EQ(q.push(31, Priority::kInteractive, &shed),
            PushOutcome::kAdmittedAfterEvict);
  EXPECT_EQ(shed, 10);
  int more = 0;
  EXPECT_EQ(q.push(32, Priority::kNormal, &more), PushOutcome::kRejectedFull);
}

TEST(AdmissionQueueTest, CloseStopsAdmissionsButDrainsBacklog) {
  AdmissionQueue<int> q(4);
  ASSERT_EQ(q.push(1, Priority::kNormal), PushOutcome::kAdmitted);
  q.close();
  EXPECT_EQ(q.push(2, Priority::kNormal), PushOutcome::kRejectedClosed);
  int out = 0;
  EXPECT_TRUE(q.pop(out));
  EXPECT_EQ(out, 1);
  EXPECT_FALSE(q.pop(out));  // closed and empty: worker exit signal
}

TEST(AdmissionQueueTest, CloseAndDrainReturnsBacklogHighestFirst) {
  AdmissionQueue<int> q(4);
  ASSERT_EQ(q.push(1, Priority::kBatch), PushOutcome::kAdmitted);
  ASSERT_EQ(q.push(2, Priority::kInteractive), PushOutcome::kAdmitted);
  ASSERT_EQ(q.push(3, Priority::kNormal), PushOutcome::kAdmitted);
  const std::vector<int> drained = q.close_and_drain();
  EXPECT_EQ(drained, (std::vector<int>{2, 3, 1}));
  EXPECT_EQ(q.size(), 0u);
  int out = 0;
  EXPECT_FALSE(q.pop(out));
}

TEST(AdmissionQueueTest, CloseWakesBlockedPop) {
  AdmissionQueue<int> q(4);
  std::atomic<bool> returned{false};
  std::thread popper([&] {
    int out = 0;
    EXPECT_FALSE(q.pop(out));
    returned.store(true);
  });
  std::this_thread::sleep_for(10ms);
  q.close();
  popper.join();
  EXPECT_TRUE(returned.load());
}

// ----------------------------------------------------- cancel token

TEST(CancelTokenTest, DeadlineAndFlagBothExpireAndResetRearms) {
  CancelToken token;
  EXPECT_FALSE(token.expired());
  EXPECT_NO_THROW(token.throw_if_expired());

  token.reset(CancelToken::Clock::now() - 1ms);
  EXPECT_TRUE(token.expired());
  EXPECT_THROW(token.throw_if_expired(), CancelledError);

  token.reset();  // no deadline
  EXPECT_FALSE(token.expired());
  token.cancel();
  EXPECT_TRUE(token.cancel_requested());
  EXPECT_THROW(token.throw_if_expired(), CancelledError);

  token.reset(CancelToken::Clock::now() + 1h);
  EXPECT_FALSE(token.expired());
}

// -------------------------------------------------- serving runtime

TEST(ServingRuntimeTest, OkResultIsBitIdenticalToDirectMatmul) {
  const MatrixF w = random_matrix(24, 48, 11);
  const MatrixF a = random_matrix(7, 24, 12);
  const auto packed = make_packed("dense", w);
  const MatrixF expected = packed->matmul(ExecContext{}, a);

  ServingOptions options;
  options.workers = 2;
  options.streams = 2;
  ServingRuntime runtime(options);
  std::vector<RequestHandle> handles;
  for (int i = 0; i < 8; ++i) {
    Request request;
    request.tag = "gemm-" + std::to_string(i);
    request.work = [&](WorkerContext& ctx) {
      ExecGraph g;
      const auto in = g.add_slot("in");
      const auto out = g.add_slot("out");
      g.add_gemm("gemm", packed.get(), in, out);
      g.slot(in) = a;
      ctx.scheduler.run(g);
      return std::move(g.slot(out));
    };
    handles.push_back(runtime.submit(std::move(request)));
  }
  for (const auto& handle : handles) {
    const Response& response = handle->wait();
    ASSERT_EQ(response.status, RequestStatus::kOk) << response.error;
    EXPECT_TRUE(bit_identical(response.result, expected));
    EXPECT_EQ(response.attempts, 1u);
    EXPECT_FALSE(response.degraded);
  }
  runtime.shutdown();
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.ok, 8u);
  EXPECT_TRUE(stats.conserved());
}

TEST(ServingRuntimeTest, FullQueueShedsInsteadOfBlocking) {
  Gate gate;
  ServingOptions options;
  options.workers = 1;
  options.streams = 1;
  options.queue_capacity = 1;
  options.evict_lower_priority = false;
  ServingRuntime runtime(options);

  Request blocker;
  blocker.tag = "blocker";
  blocker.work = [&](WorkerContext&) {
    gate.wait_open();
    return scalar(1.0f);
  };
  auto blocked = runtime.submit(std::move(blocker));
  gate.wait_for_waiter();  // the worker is now held inside the request

  Request queued;
  queued.work = [](WorkerContext&) { return scalar(2.0f); };
  auto admitted = runtime.submit(std::move(queued));  // fills the queue

  // Saturated: further arrivals terminate immediately as REJECTED.
  Request extra;
  extra.tag = "shed";
  extra.work = [](WorkerContext&) { return scalar(3.0f); };
  auto shed = runtime.submit(std::move(extra));
  ASSERT_TRUE(shed->done());
  EXPECT_EQ(shed->response().status, RequestStatus::kRejected);
  EXPECT_EQ(shed->response().error, "admission queue full");
  EXPECT_EQ(shed->response().tag, "shed");

  gate.release();
  EXPECT_EQ(blocked->wait().status, RequestStatus::kOk);
  EXPECT_EQ(admitted->wait().status, RequestStatus::kOk);
  runtime.shutdown();
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.rejected_full, 1u);
  EXPECT_EQ(stats.ok, 2u);
  EXPECT_TRUE(stats.conserved());
}

TEST(ServingRuntimeTest, HigherPriorityArrivalEvictsQueuedLowerClass) {
  Gate gate;
  ServingOptions options;
  options.workers = 1;
  options.streams = 1;
  options.queue_capacity = 1;
  ServingRuntime runtime(options);

  Request blocker;
  blocker.work = [&](WorkerContext&) {
    gate.wait_open();
    return scalar(0.0f);
  };
  auto blocked = runtime.submit(std::move(blocker));
  gate.wait_for_waiter();

  Request batch;
  batch.priority = Priority::kBatch;
  batch.tag = "victim";
  batch.work = [](WorkerContext&) { return scalar(1.0f); };
  auto victim = runtime.submit(std::move(batch));

  Request urgent;
  urgent.priority = Priority::kInteractive;
  urgent.work = [](WorkerContext&) { return scalar(2.0f); };
  auto admitted = runtime.submit(std::move(urgent));

  ASSERT_TRUE(victim->done());
  EXPECT_EQ(victim->response().status, RequestStatus::kRejected);
  EXPECT_EQ(victim->response().tag, "victim");

  gate.release();
  EXPECT_EQ(admitted->wait().status, RequestStatus::kOk);
  runtime.shutdown();
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.evicted, 1u);
  EXPECT_EQ(stats.ok, 2u);
  EXPECT_TRUE(stats.conserved());
}

TEST(ServingRuntimeTest, ExpiredDeadlineTimesOutWithoutExecution) {
  ServingOptions options;
  options.workers = 1;
  ServingRuntime runtime(options);
  std::atomic<int> executions{0};
  Request request;
  request.deadline = Clock::now() - 1ms;
  request.work = [&](WorkerContext&) {
    executions.fetch_add(1);
    return scalar(1.0f);
  };
  auto handle = runtime.submit(std::move(request));
  const Response& response = handle->wait();
  EXPECT_EQ(response.status, RequestStatus::kTimeout);
  EXPECT_EQ(executions.load(), 0);
  runtime.shutdown();
  EXPECT_TRUE(runtime.stats().conserved());
}

TEST(ServingRuntimeTest, DeadlineCancelsMidGraphAtNodeBoundary) {
  ServingOptions options;
  options.workers = 1;
  options.streams = 1;  // run_serial: cancellation check before every node
  ServingRuntime runtime(options);

  std::atomic<int> nodes_run{0};
  Request request;
  request.deadline = Clock::now() + 10ms;
  request.work = [&](WorkerContext& ctx) {
    ExecGraph g;
    ExecGraph::SlotId prev = g.add_slot("s0");
    g.add_host("n0", {}, {prev}, [&](ExecGraph&) {
      nodes_run.fetch_add(1);
      std::this_thread::sleep_for(5ms);
    });
    for (int i = 1; i < 20; ++i) {
      const auto next = g.add_slot("s" + std::to_string(i));
      g.add_host("n" + std::to_string(i), {prev}, {next}, [&](ExecGraph&) {
        nodes_run.fetch_add(1);
        std::this_thread::sleep_for(5ms);
      });
      prev = next;
    }
    ctx.scheduler.run(g);
    return scalar(1.0f);
  };
  auto handle = runtime.submit(std::move(request));
  const Response& response = handle->wait();
  EXPECT_EQ(response.status, RequestStatus::kTimeout);
  EXPECT_EQ(response.attempts, 1u);  // timeouts are never retried
  // Cancelled cooperatively: some prefix ran, the tail was abandoned.
  EXPECT_LT(nodes_run.load(), 20);
  runtime.shutdown();
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.timeout, 1u);
  EXPECT_EQ(stats.retries, 0u);
  EXPECT_TRUE(stats.conserved());
}

TEST(ServingRuntimeTest, PersistentFailureExhaustsBoundedRetries) {
  ServingOptions options;
  options.workers = 1;
  options.max_attempts = 3;
  options.retry_backoff = 100us;
  ServingRuntime runtime(options);
  std::atomic<int> calls{0};
  Request request;
  request.work = [&](WorkerContext&) -> MatrixF {
    calls.fetch_add(1);
    throw std::runtime_error("persistent node failure");
  };
  auto handle = runtime.submit(std::move(request));
  const Response& response = handle->wait();
  EXPECT_EQ(response.status, RequestStatus::kFailed);
  EXPECT_EQ(response.error, "persistent node failure");
  EXPECT_EQ(response.attempts, 3u);
  EXPECT_EQ(calls.load(), 3);
  runtime.shutdown();
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_TRUE(stats.conserved());
}

TEST(ServingRuntimeTest, TransientFailureRetriesOnDegradedPath) {
  ServingOptions options;
  options.workers = 1;
  options.streams = 2;
  options.max_attempts = 2;
  options.retry_backoff = 100us;
  ServingRuntime runtime(options);
  Request request;
  request.work = [](WorkerContext& ctx) -> MatrixF {
    if (ctx.attempt == 0) throw std::runtime_error("transient stream fault");
    // The retry must run on the serial fallback scheduler.
    EXPECT_TRUE(ctx.degraded);
    EXPECT_EQ(ctx.scheduler.options().streams, 1u);
    return scalar(42.0f);
  };
  auto handle = runtime.submit(std::move(request));
  const Response& response = handle->wait();
  ASSERT_EQ(response.status, RequestStatus::kOk) << response.error;
  EXPECT_TRUE(response.degraded);
  EXPECT_EQ(response.attempts, 2u);
  EXPECT_EQ(response.result(0, 0), 42.0f);
  runtime.shutdown();
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.degraded_ok, 1u);
  EXPECT_EQ(stats.retries, 1u);
  EXPECT_TRUE(stats.conserved());
}

TEST(ServingRuntimeTest, ValidationFailureFallsBackWithoutBackoff) {
  ServingOptions options;
  options.workers = 1;
  options.max_attempts = 2;
  options.retry_backoff = 10s;  // would blow the test budget if waited on
  ServingRuntime runtime(options);
  Request request;
  request.work = [](WorkerContext& ctx) -> MatrixF {
    if (!ctx.degraded) {
      throw GraphValidationError(
          {{FindingSeverity::kError, "shape-mismatch", "graph rejected"}});
    }
    return scalar(7.0f);
  };
  auto handle = runtime.submit(std::move(request));
  ASSERT_TRUE(handle->wait_for(5s));
  const Response& response = handle->response();
  ASSERT_EQ(response.status, RequestStatus::kOk) << response.error;
  EXPECT_TRUE(response.degraded);
  runtime.shutdown();
  EXPECT_TRUE(runtime.stats().conserved());
}

TEST(ServingRuntimeTest, WorkerSurvivesFailuresAndKeepsServing) {
  ServingOptions options;
  options.workers = 1;
  options.max_attempts = 1;
  ServingRuntime runtime(options);
  std::vector<RequestHandle> handles;
  for (int i = 0; i < 10; ++i) {
    Request request;
    if (i % 2 == 0) {
      request.work = [](WorkerContext&) -> MatrixF {
        throw std::runtime_error("boom");
      };
    } else {
      request.work = [i](WorkerContext&) {
        return scalar(static_cast<float>(i));
      };
    }
    handles.push_back(runtime.submit(std::move(request)));
  }
  for (int i = 0; i < 10; ++i) {
    const Response& response = handles[static_cast<std::size_t>(i)]->wait();
    if (i % 2 == 0) {
      EXPECT_EQ(response.status, RequestStatus::kFailed);
    } else {
      ASSERT_EQ(response.status, RequestStatus::kOk);
      EXPECT_EQ(response.result(0, 0), static_cast<float>(i));
    }
  }
  runtime.shutdown();
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.ok, 5u);
  EXPECT_EQ(stats.failed, 5u);
  EXPECT_TRUE(stats.conserved());
}

TEST(ServingRuntimeTest, CancelShutdownTimesOutBacklogAndInFlight) {
  Gate gate;
  ServingOptions options;
  options.workers = 1;
  options.queue_capacity = 8;
  ServingRuntime runtime(options);

  Request blocker;
  blocker.work = [&](WorkerContext& ctx) -> MatrixF {
    gate.enter();
    // A long-running request: spins at a cancellation point until
    // shutdown(kCancel) trips the worker token.
    while (!ctx.cancel.cancel_requested()) std::this_thread::sleep_for(100us);
    ctx.cancel.throw_if_expired();
    return scalar(1.0f);
  };
  auto in_flight = runtime.submit(std::move(blocker));
  gate.wait_for_waiter();

  std::vector<RequestHandle> backlog;
  for (int i = 0; i < 4; ++i) {
    Request request;
    request.work = [](WorkerContext&) { return scalar(0.0f); };
    backlog.push_back(runtime.submit(std::move(request)));
  }

  // shutdown(kCancel) completes the backlog as TIMEOUT before joining,
  // then cancels the worker token so the in-flight request unblocks.
  runtime.shutdown(ServingRuntime::Shutdown::kCancel);
  for (const auto& handle : backlog) {
    EXPECT_EQ(handle->wait().status, RequestStatus::kTimeout);
  }
  EXPECT_EQ(in_flight->wait().status, RequestStatus::kTimeout);

  // Post-shutdown arrivals are terminally rejected, not lost.
  Request late;
  late.work = [](WorkerContext&) { return scalar(9.0f); };
  auto rejected = runtime.submit(std::move(late));
  ASSERT_TRUE(rejected->done());
  EXPECT_EQ(rejected->response().status, RequestStatus::kRejected);

  const auto stats = runtime.stats();
  EXPECT_EQ(stats.timeout, 5u);
  EXPECT_EQ(stats.rejected_closed, 1u);
  EXPECT_TRUE(stats.conserved());
}

TEST(ServingRuntimeTest, DrainShutdownServesEverythingAdmitted) {
  ServingOptions options;
  options.workers = 3;
  options.streams = 2;
  options.queue_capacity = 256;
  ServingRuntime runtime(options);
  std::vector<RequestHandle> handles;
  for (int i = 0; i < 64; ++i) {
    Request request;
    request.priority = static_cast<Priority>(i % 3);
    request.work = [i](WorkerContext&) { return scalar(static_cast<float>(i)); };
    handles.push_back(runtime.submit(std::move(request)));
  }
  runtime.shutdown(ServingRuntime::Shutdown::kDrain);
  for (std::size_t i = 0; i < handles.size(); ++i) {
    ASSERT_TRUE(handles[i]->done());
    ASSERT_EQ(handles[i]->response().status, RequestStatus::kOk);
    EXPECT_EQ(handles[i]->response().result(0, 0), static_cast<float>(i));
  }
  const auto stats = runtime.stats();
  EXPECT_EQ(stats.admitted, 64u);
  EXPECT_EQ(stats.ok, 64u);
  EXPECT_TRUE(stats.conserved());
}

TEST(ServingRuntimeTest, NullWorkIsAnArgumentError) {
  ServingRuntime runtime{ServingOptions{}};
  EXPECT_THROW(runtime.submit(Request{}), std::invalid_argument);
}

}  // namespace
}  // namespace tilesparse::serve
