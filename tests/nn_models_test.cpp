#include <gtest/gtest.h>

#include "nn/bert_mini.hpp"
#include "nn/loss.hpp"
#include "nn/metrics.hpp"
#include "nn/nmt_mini.hpp"
#include "nn/optimizer.hpp"
#include "nn/vgg_mini.hpp"
#include "workload/datasets.hpp"

namespace tilesparse {
namespace {

TEST(BertMini, ForwardShapesAndPrunableCount) {
  const BertMiniConfig config;
  TokenTeacherDataset data(64, config.seq, config.classes, config.dim, 1);
  BertMini model(config, data.embedding());
  Rng rng(2);
  const TokenBatch batch = data.sample(8, rng);
  const MatrixF logits = model.forward(batch);
  EXPECT_EQ(logits.rows(), 8u);
  EXPECT_EQ(logits.cols(), config.classes);
  // 6 prunable matrices per layer (classifier head excluded).
  EXPECT_EQ(model.prunable_weights().size(), config.layers * 6);
}

TEST(BertMini, TrainingReducesLoss) {
  const BertMiniConfig config;
  TokenTeacherDataset data(64, config.seq, config.classes, config.dim, 3);
  BertMini model(config, data.embedding());
  SgdOptimizer opt(model.params(), 0.02f, 0.9f);
  Rng rng(4);

  float first_loss = 0.0f, last_loss = 0.0f;
  for (int step = 0; step < 60; ++step) {
    const TokenBatch batch = data.sample(64, rng);
    const MatrixF logits = model.forward(batch);
    MatrixF dlogits;
    const float loss = softmax_cross_entropy(logits, batch.y, dlogits);
    if (step == 0) first_loss = loss;
    last_loss = loss;
    model.backward(dlogits);
    opt.step();
  }
  EXPECT_LT(last_loss, first_loss * 0.9f);
}

TEST(VggMini, ForwardShapes) {
  const VggMiniConfig config;
  VggMini model(config);
  ClusterImageDataset data(config.classes, config.channels, config.height,
                           config.width, 0.5f, 5);
  Rng rng(6);
  const auto batch = data.sample(4, rng);
  const MatrixF logits = model.forward(batch.x);
  EXPECT_EQ(logits.rows(), 4u);
  EXPECT_EQ(logits.cols(), config.classes);
  EXPECT_EQ(model.prunable_weights().size(), 3u);
}

TEST(VggMini, LearnsSeparableImages) {
  const VggMiniConfig config;
  VggMini model(config);
  ClusterImageDataset data(config.classes, config.channels, config.height,
                           config.width, 0.6f, 7);
  SgdOptimizer opt(model.params(), 0.02f, 0.9f);
  Rng rng(8);
  for (int step = 0; step < 80; ++step) {
    const auto batch = data.sample(64, rng);
    const MatrixF logits = model.forward(batch.x);
    MatrixF dlogits;
    softmax_cross_entropy(logits, batch.y, dlogits);
    model.backward(dlogits);
    opt.step();
  }
  Rng eval_rng(9);
  const auto eval = data.sample(256, eval_rng);
  EXPECT_GT(accuracy(model.forward(eval.x), eval.y), 0.6);
}

TEST(NmtMini, ForwardShapes) {
  const NmtMiniConfig config;
  NmtMini model(config);
  ReverseDataset data(config.vocab, config.seq, 10);
  Rng rng(11);
  const auto batch = data.sample(4, rng);
  const MatrixF logits = model.forward(batch);
  EXPECT_EQ(logits.rows(), 4u * config.seq);
  EXPECT_EQ(logits.cols(), config.vocab);
  EXPECT_EQ(model.prunable_weights().size(), 5u);
}

TEST(NmtMini, TeacherForcedLossDecreases) {
  const NmtMiniConfig config;
  NmtMini model(config);
  ReverseDataset data(config.vocab, config.seq, 12);
  AdamOptimizer opt(model.params(), 3e-3f);
  Rng rng(13);
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 60; ++step) {
    const auto batch = data.sample(32, rng);
    const MatrixF logits = model.forward(batch);
    MatrixF dlogits;
    const float loss = softmax_cross_entropy(logits, batch.tgt, dlogits);
    if (step == 0) first = loss;
    last = loss;
    model.backward(dlogits);
    opt.step();
  }
  EXPECT_LT(last, first * 0.9f);
}

TEST(Bleu, PerfectMatchIsHundred) {
  const std::vector<int> tokens{1, 2, 3, 4, 5, 6, 7, 8};
  EXPECT_NEAR(bleu4(tokens, tokens, 1, 8), 100.0, 1e-6);
}

TEST(Bleu, DisjointIsNearZero) {
  const std::vector<int> a{1, 2, 3, 4, 5, 6, 7, 8};
  const std::vector<int> b{9, 10, 11, 12, 13, 14, 15, 16};
  EXPECT_LT(bleu4(a, b, 1, 8), 5.0);
}

TEST(Bleu, PartialOverlapBetween) {
  const std::vector<int> ref{1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> cand = ref;
  cand[7] = 99;
  const double score = bleu4(cand, ref, 1, 8);
  EXPECT_GT(score, 30.0);
  EXPECT_LT(score, 100.0);
}

}  // namespace
}  // namespace tilesparse
