// Latency-model invariants.  Absolute times are model outputs, but the
// *orderings* asserted here are the paper's headline qualitative claims
// (Sec. III-B, VII-B): they must hold for any sane calibration.

#include <gtest/gtest.h>

#include "prune/importance.hpp"
#include "prune/tw_pruner.hpp"
#include "sim/gemm_model.hpp"
#include "sim/sparse_model.hpp"
#include "sim/tw_model.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace tilesparse {
namespace {

const DeviceModel kDev = DeviceModel::v100();
const GemmShape kBertFfn{128, 3072, 768};

TilePattern tw_pattern(double sparsity, std::size_t g = 128,
                       std::size_t k = 768, std::size_t n = 3072) {
  Rng rng(1);
  MatrixF scores(k, n);
  fill_uniform(scores, rng, 0.01f, 1.0f);
  return tw_pattern_from_scores(scores, sparsity, g);
}

TEST(GemmModel, TensorCoreFasterThanCudaCore) {
  const auto tc = dense_gemm_latency(kDev, kBertFfn, Core::kTensor);
  const auto cc = dense_gemm_latency(kDev, kBertFfn, Core::kCuda);
  EXPECT_LT(tc.seconds(), cc.seconds());
}

TEST(GemmModel, LatencyScalesWithWork) {
  // Scale K: at fixed output grid the compute time must grow linearly-ish
  // (scaling N alone can be free while the SMs are under-filled).
  const auto small = dense_gemm_latency(kDev, {128, 3072, 768}, Core::kTensor);
  const auto large = dense_gemm_latency(kDev, {128, 3072, 3072}, Core::kTensor);
  EXPECT_GT(large.seconds(), 2.0 * small.seconds());
}

TEST(GemmModel, WaveUtilizationInUnitRange) {
  for (std::size_t m : {1u, 17u, 128u, 1000u}) {
    for (std::size_t n : {1u, 64u, 128u, 4096u}) {
      const double u = wave_utilization(kDev, m, n);
      EXPECT_GT(u, 0.0);
      EXPECT_LE(u, 1.0);
    }
  }
}

TEST(GemmModel, SmallGemmUnderutilises) {
  EXPECT_LT(wave_utilization(kDev, 16, 16), wave_utilization(kDev, 2048, 2048));
}

TEST(GemmModel, BatchingAmortisesLaunchAndFillsWaves) {
  const GemmShape tile{128, 128, 768};
  const auto one = dense_gemm_latency(kDev, tile, Core::kTensor);
  const auto batched = batched_gemm_latency(kDev, tile, 24, Core::kTensor);
  EXPECT_LT(batched.seconds(), 24.0 * one.seconds());
}

TEST(SparseModel, CsrSlowerThanDenseAtModerateSparsity) {
  // The paper's core negative result: EW at 75% sparsity loses to the
  // dense model on CUDA cores.
  const auto dense = dense_gemm_latency(kDev, kBertFfn, Core::kCuda);
  const auto csr = csr_spmm_latency(kDev, kBertFfn, 0.25);
  EXPECT_GT(csr.seconds(), dense.seconds());
}

TEST(SparseModel, CsrWinsAtExtremeSparsity) {
  // ...but unstructured sparsity does win above ~95% (prior work cited
  // in Sec. II-B).
  const auto dense = dense_gemm_latency(kDev, kBertFfn, Core::kCuda);
  const auto csr = csr_spmm_latency(kDev, kBertFfn, 0.02);
  EXPECT_LT(csr.seconds(), dense.seconds());
}

TEST(SparseModel, BsrSlowerThanDenseTcAtModerateSparsity) {
  const auto dense = dense_gemm_latency(kDev, kBertFfn, Core::kTensor);
  const auto bsr = bsr_gemm_latency(kDev, kBertFfn, 0.45, 32);
  EXPECT_GT(bsr.seconds(), 2.0 * dense.seconds());
}

TEST(SparseModel, Bsr64CrossesOverNear90Percent) {
  const auto dense = dense_gemm_latency(kDev, kBertFfn, Core::kTensor);
  const auto at85 = bsr_gemm_latency(kDev, kBertFfn, 0.15, 64);
  const auto at95 = bsr_gemm_latency(kDev, kBertFfn, 0.05, 64);
  EXPECT_GT(at85.seconds(), dense.seconds());
  EXPECT_LT(at95.seconds(), dense.seconds());
}

TEST(TwModel, ZeroSparsityCarriesMaskOverhead) {
  // Paper Fig. 11: TW-0 is ~35% slower than dense and issues ~2x loads.
  const auto dense = dense_gemm_latency(kDev, kBertFfn, Core::kTensor);
  const auto tw = tw_gemm_latency(kDev, 128, tw_pattern(0.0));
  EXPECT_GT(tw.seconds(), dense.seconds());
  EXPECT_LT(tw.seconds(), 2.0 * dense.seconds());
  EXPECT_GT(tw.load_bytes, 1.5 * dense.load_bytes);
}

TEST(TwModel, CrossoverNearFortyPercent) {
  const auto dense = dense_gemm_latency(kDev, kBertFfn, Core::kTensor);
  const auto at20 = tw_gemm_latency(kDev, 128, tw_pattern(0.20));
  const auto at60 = tw_gemm_latency(kDev, 128, tw_pattern(0.60));
  EXPECT_GT(at20.seconds(), dense.seconds());
  EXPECT_LT(at60.seconds(), dense.seconds());
}

TEST(TwModel, SpeedupAt75PercentIsMeaningful) {
  const auto dense = dense_gemm_latency(kDev, kBertFfn, Core::kTensor);
  const auto tw = tw_gemm_latency(kDev, 128, tw_pattern(0.75));
  const double speedup = dense.seconds() / tw.seconds();
  EXPECT_GT(speedup, 1.5);
  EXPECT_LT(speedup, 4.0);
}

TEST(TwModel, MonotonicInSparsity) {
  double previous = 1e9;
  for (double s : {0.0, 0.25, 0.5, 0.75, 0.9, 0.99}) {
    const double t = tw_gemm_latency(kDev, 128, tw_pattern(s)).seconds();
    EXPECT_LE(t, previous + 1e-9) << "sparsity " << s;
    previous = t;
  }
}

TEST(TwModel, TransposeOptimizationHelps) {
  TwExecOptions with, without;
  without.transpose_opt = false;
  const auto p = tw_pattern(0.75);
  EXPECT_LT(tw_gemm_latency(kDev, 128, p, with).seconds(),
            tw_gemm_latency(kDev, 128, p, without).seconds());
}

TEST(TwModel, BatchingHelps) {
  TwExecOptions with, without;
  without.batching = false;
  const auto p = tw_pattern(0.75);
  EXPECT_LT(tw_gemm_latency(kDev, 128, p, with).seconds(),
            tw_gemm_latency(kDev, 128, p, without).seconds());
}

TEST(TwModel, StreamsHelpWhenManyLaunches) {
  TwExecOptions with, without;
  with.batching = without.batching = false;  // many launches -> streams matter
  without.streams = false;
  const auto p = tw_pattern(0.75);
  EXPECT_LT(tw_gemm_latency(kDev, 128, p, with).seconds(),
            tw_gemm_latency(kDev, 128, p, without).seconds());
}

TEST(TwModel, FlopsEfficiencyDropsAtExtremeSparsity) {
  // Fig. 11: FLOPS efficiency holds until ~80% then collapses.
  const auto at50 = tw_gemm_latency(kDev, 128, tw_pattern(0.5));
  const auto at99 = tw_gemm_latency(kDev, 128, tw_pattern(0.99));
  EXPECT_GT(at50.flops_efficiency(kDev.tensor_core_flops),
            at99.flops_efficiency(kDev.tensor_core_flops));
}

TEST(TewModel, SmallDeltaKillsTensorCoreSpeedup) {
  // Fig. 10b: at 75% sparsity TEW-1% loses the TW speedup because the EW
  // remainder runs on CUDA cores.
  const auto dense = dense_gemm_latency(kDev, kBertFfn, Core::kTensor);
  const auto tw = tw_gemm_latency(kDev, 128, tw_pattern(0.76));
  const auto tew = tew_gemm_latency(kDev, 128, tw_pattern(0.76), 0.01);
  EXPECT_LT(tw.seconds(), dense.seconds());
  EXPECT_GT(tew.seconds(), 0.8 * dense.seconds());
}

TEST(TewModel, LatencyGrowsWithDelta) {
  const auto p = tw_pattern(0.80);
  double previous = 0.0;
  for (double delta : {0.01, 0.05, 0.10, 0.15}) {
    const double t = tew_gemm_latency(kDev, 128, p, delta).seconds();
    EXPECT_GT(t, previous);
    previous = t;
  }
}

}  // namespace
}  // namespace tilesparse
