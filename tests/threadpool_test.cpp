// ThreadPool stress coverage: the pool under the ExecScheduler now
// hosts long-lived "stream" bodies that block on condition variables
// and wake each other, so the fork-join primitive is exercised far
// harder than the GEMM loops did.  These tests hammer rapid-fire
// launches, nested calls, concurrent-pool interactions and
// reduction-style bodies to pin down the invariants the scheduler
// relies on: every index runs exactly once, parallel_for never
// returns early, and nesting degrades to serial instead of
// deadlocking.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "util/threadpool.hpp"

namespace tilesparse {
namespace {

TEST(ThreadPoolStress, EveryIndexRunsExactlyOnceUnderRapidFire) {
  ThreadPool pool(4);
  for (int round = 0; round < 200; ++round) {
    const std::size_t n = 1 + static_cast<std::size_t>(round % 97);
    std::vector<std::atomic<int>> hits(n);
    pool.parallel_for(0, n, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < n; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "round " << round << " index " << i;
  }
}

TEST(ThreadPoolStress, ChunkedVariantCoversRangeWithoutOverlap) {
  ThreadPool pool(4);
  constexpr std::size_t kTotal = 100000;
  std::vector<std::uint8_t> seen(kTotal, 0);
  std::atomic<std::size_t> chunks{0};
  pool.parallel_for_chunked(0, kTotal, 64, [&](std::size_t lo, std::size_t hi) {
    chunks.fetch_add(1, std::memory_order_relaxed);
    for (std::size_t i = lo; i < hi; ++i) seen[i] = 1;  // disjoint chunks
  });
  EXPECT_GE(chunks.load(), 1u);
  EXPECT_EQ(std::accumulate(seen.begin(), seen.end(), std::size_t{0}), kTotal);
}

TEST(ThreadPoolStress, ForkJoinIsABarrier) {
  // parallel_for must not return while any iteration is still
  // running: the sum is only correct if the join really joined.
  ThreadPool pool(7);
  for (int round = 0; round < 100; ++round) {
    std::atomic<std::int64_t> sum{0};
    const std::size_t n = 1000;
    pool.parallel_for(0, n, [&](std::size_t i) {
      sum.fetch_add(static_cast<std::int64_t>(i), std::memory_order_relaxed);
    });
    EXPECT_EQ(sum.load(), static_cast<std::int64_t>(n * (n - 1) / 2));
  }
}

TEST(ThreadPoolStress, NestedCallsRunSerialNotDeadlock) {
  ThreadPool pool(3);
  std::atomic<int> inner_total{0};
  pool.parallel_for(0, 16, [&](std::size_t) {
    // Nested use from inside a worker must fall back to serial.
    pool.parallel_for(0, 8, [&](std::size_t) {
      inner_total.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_total.load(), 16 * 8);
}

TEST(ThreadPoolStress, IndependentPoolsInterleave) {
  // The scheduler's streams may launch kernels that use a different
  // pool; two pools forked from the same thread must not interfere.
  ThreadPool a(2), b(2);
  std::atomic<int> hits{0};
  a.parallel_for(0, 8, [&](std::size_t) {
    b.parallel_for(0, 4,
                   [&](std::size_t) { hits.fetch_add(1); });
  });
  EXPECT_EQ(hits.load(), 8 * 4);
}

TEST(ThreadPoolStress, ZeroAndReversedRangesAreNoops) {
  ThreadPool pool(2);
  std::atomic<int> hits{0};
  pool.parallel_for(5, 5, [&](std::size_t) { hits.fetch_add(1); });
  pool.parallel_for(9, 3, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 0);
}

TEST(ThreadPoolStress, MachineSizedPoolCompletes) {
  ThreadPool pool;  // hardware_concurrency() - 1 workers
  std::atomic<int> hits{0};
  pool.parallel_for(0, 100, [&](std::size_t) { hits.fetch_add(1); });
  EXPECT_EQ(hits.load(), 100);
}

TEST(ThreadPoolShutdown, PostShutdownCallsRunInline) {
  ThreadPool pool(4);
  pool.shutdown();
  EXPECT_TRUE(pool.stopped());
  EXPECT_EQ(pool.worker_count(), 1u);  // only the caller remains
  std::atomic<int> hits{0};
  pool.parallel_for(0, 64, [&](std::size_t) {
    hits.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(hits.load(), 64);  // inline fallback, nothing lost
}

TEST(ThreadPoolShutdown, IdempotentAndDestructorSafe) {
  ThreadPool pool(3);
  std::atomic<int> hits{0};
  pool.parallel_for(0, 10, [&](std::size_t) { hits.fetch_add(1); });
  pool.shutdown();
  pool.shutdown();  // second call is a no-op
  EXPECT_EQ(hits.load(), 10);
  // Destructor runs shutdown() a third time on scope exit.
}

TEST(ThreadPoolShutdown, DrainsTasksInFlightFromConcurrentSubmitters) {
  // The serving runtime tears pools down while workers may still be
  // launching graphs: shutdown() must not lose iterations.  Submitter
  // threads hammer parallel_for while the main thread shuts the pool
  // down mid-stream; every loop must still account for every index —
  // before the stop via pool workers, after it via the inline path.
  for (int round = 0; round < 10; ++round) {
    ThreadPool pool(4);
    constexpr int kSubmitters = 4;
    constexpr int kLoops = 50;
    constexpr std::size_t kRange = 512;
    std::atomic<std::int64_t> lost{0};
    std::vector<std::thread> submitters;
    submitters.reserve(kSubmitters);
    for (int t = 0; t < kSubmitters; ++t) {
      submitters.emplace_back([&] {
        for (int loop = 0; loop < kLoops; ++loop) {
          std::atomic<std::int64_t> sum{0};
          pool.parallel_for(0, kRange, [&](std::size_t i) {
            sum.fetch_add(static_cast<std::int64_t>(i),
                          std::memory_order_relaxed);
          });
          constexpr auto kWant =
              static_cast<std::int64_t>(kRange * (kRange - 1) / 2);
          if (sum.load() != kWant) lost.fetch_add(1);
        }
      });
    }
    // Shut down somewhere in the middle of the barrage.
    std::this_thread::sleep_for(std::chrono::microseconds(200 * round));
    pool.shutdown();
    for (auto& submitter : submitters) submitter.join();
    EXPECT_EQ(lost.load(), 0) << "round " << round;
    EXPECT_TRUE(pool.stopped());
  }
}

}  // namespace
}  // namespace tilesparse
