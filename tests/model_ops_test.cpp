#include <gtest/gtest.h>

#include "gemm/fused_ops.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "prune/tw_pruner.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "workload/model_ops.hpp"
#include "workload/shapes.hpp"

namespace tilesparse {
namespace {

std::size_t count_kind(const std::vector<E2eOp>& ops, E2eOp::Kind kind) {
  std::size_t n = 0;
  for (const auto& op : ops) n += op.kind == kind;
  return n;
}

TEST(BertOps, Has72PrunableGemms) {
  const auto ops = build_bert_ops(128, 1);
  EXPECT_EQ(count_kind(ops, E2eOp::Kind::kGemm), 72u);
}

TEST(BertOps, GemmShapesMatchShapeList) {
  const auto ops = build_bert_ops(128, 1);
  const auto gemms = bert_base_gemms(128, 1);
  std::size_t gemm_index = 0;
  for (const auto& op : ops) {
    if (op.kind != E2eOp::Kind::kGemm) continue;
    ASSERT_LT(gemm_index, gemms.size());
    EXPECT_EQ(op.shape.m, gemms[gemm_index].shape.m);
    EXPECT_EQ(op.shape.n, gemms[gemm_index].shape.n);
    EXPECT_EQ(op.shape.k, gemms[gemm_index].shape.k);
    ++gemm_index;
  }
  EXPECT_EQ(gemm_index, gemms.size());
}

TEST(BertOps, PatternsAttachInOrder) {
  const auto gemms = bert_base_gemms(128, 1);
  std::vector<TilePattern> patterns;
  Rng rng(1);
  for (const auto& gemm : gemms) {
    MatrixF scores(gemm.shape.k, gemm.shape.n);
    fill_uniform(scores, rng, 0.1f, 1.0f);
    patterns.push_back(tw_pattern_from_scores(scores, 0.5, 128));
  }
  std::vector<const TilePattern*> ptrs;
  for (const auto& p : patterns) ptrs.push_back(&p);
  const auto ops = build_bert_ops(128, 1, &ptrs);
  std::size_t index = 0;
  for (const auto& op : ops) {
    if (op.kind != E2eOp::Kind::kGemm) continue;
    EXPECT_EQ(op.pattern, ptrs[index]);
    // Pattern dims must match the GEMM's weight dims.
    EXPECT_EQ(op.pattern->k, op.shape.k);
    EXPECT_EQ(op.pattern->n, op.shape.n);
    ++index;
  }
}

TEST(BertOps, HasFixedGemmsAndTransposes) {
  const auto ops = build_bert_ops(128, 1);
  EXPECT_EQ(count_kind(ops, E2eOp::Kind::kGemmFixed), 24u);  // 2 per layer
  EXPECT_EQ(count_kind(ops, E2eOp::Kind::kTranspose), 12u);  // 1 per layer
}

TEST(NmtOps, Has10PrunableGemms) {
  const auto ops = build_nmt_ops(32, 32);
  EXPECT_EQ(count_kind(ops, E2eOp::Kind::kGemm), 10u);
}

TEST(NmtOps, ElementwiseBytesArePositive) {
  for (const auto& op : build_nmt_ops(32, 32)) {
    if (op.kind == E2eOp::Kind::kElementwise) EXPECT_GT(op.bytes, 0.0);
  }
}

// ---- fused_ops vs nn layer consistency (two implementations of the
// same math must agree).

TEST(Consistency, LayerNormLayerMatchesFusedKernel) {
  Rng rng(2);
  MatrixF x(6, 32);
  fill_normal(x, rng, 2.0f, 3.0f);
  MatrixF x2 = x;

  LayerNorm layer("ln", 32);
  const MatrixF y_layer = layer.forward(x);

  std::vector<float> gamma(32, 1.0f), beta(32, 0.0f);
  layer_norm(x2, gamma, beta);
  EXPECT_LT(max_abs_diff(y_layer, x2), 1e-4f);
}

TEST(Consistency, GeluLayerMatchesFusedKernel) {
  Rng rng(3);
  MatrixF x(4, 16);
  fill_normal(x, rng);
  MatrixF x2 = x;
  Gelu layer;
  const MatrixF y_layer = layer.forward(x);
  gelu(x2);
  EXPECT_LT(max_abs_diff(y_layer, x2), 1e-5f);
}

TEST(Consistency, SoftmaxRowsMatchesLossSoftmax) {
  // softmax_rows vs the softmax inside cross-entropy: probabilities must
  // agree.  Reconstruct p from the CE gradient: grad = (p - 1[label])/B.
  Rng rng(4);
  MatrixF logits(5, 7);
  fill_normal(logits, rng);
  MatrixF probs = logits;
  softmax_rows(probs);

  MatrixF dlogits;
  const std::vector<int> labels{0, 1, 2, 3, 4};
  softmax_cross_entropy(logits, labels, dlogits);
  const float batch = 5.0f;
  for (std::size_t r = 0; r < 5; ++r) {
    for (std::size_t c = 0; c < 7; ++c) {
      const float indicator = (static_cast<int>(c) == labels[r]) ? 1.0f : 0.0f;
      const float p_from_grad = dlogits(r, c) * batch + indicator;
      EXPECT_NEAR(p_from_grad, probs(r, c), 1e-5f);
    }
  }
}

}  // namespace
}  // namespace tilesparse
