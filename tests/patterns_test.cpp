#include <gtest/gtest.h>

#include <algorithm>

#include "prune/analysis.hpp"
#include "prune/importance.hpp"
#include "prune/patterns.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace tilesparse {
namespace {

MatrixF random_scores(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  MatrixF m(rows, cols);
  fill_uniform(m, rng, 0.0f, 1.0f);
  return m;
}

double mask_sparsity(const MatrixU8& mask) {
  std::size_t kept = 0;
  for (auto v : mask.flat()) kept += v != 0;
  return 1.0 - static_cast<double>(kept) / static_cast<double>(mask.size());
}

TEST(Importance, MagnitudeIsAbs) {
  MatrixF w(1, 2);
  w(0, 0) = -3.0f;
  w(0, 1) = 2.0f;
  const MatrixF s = magnitude_scores(w);
  EXPECT_FLOAT_EQ(s(0, 0), 3.0f);
  EXPECT_FLOAT_EQ(s(0, 1), 2.0f);
}

TEST(Importance, TaylorIsAbsWTimesGrad) {
  MatrixF w(1, 2), g(1, 2);
  w(0, 0) = 2.0f;
  w(0, 1) = -4.0f;
  g(0, 0) = -0.5f;
  g(0, 1) = 0.25f;
  const MatrixF s = taylor_scores(w, g);
  EXPECT_FLOAT_EQ(s(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(s(0, 1), 1.0f);
}

class EwSparsityTest : public ::testing::TestWithParam<double> {};

TEST_P(EwSparsityTest, HitsExactTarget) {
  const double target = GetParam();
  const MatrixF scores = random_scores(64, 64, 1);
  const MatrixU8 mask = ew_mask(scores, target);
  EXPECT_NEAR(mask_sparsity(mask), target, 1.0 / (64.0 * 64.0) + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Targets, EwSparsityTest,
                         ::testing::Values(0.0, 0.1, 0.25, 0.5, 0.75, 0.9,
                                           0.99, 1.0));

TEST(EwMask, PrunesLowestScores) {
  const MatrixF scores = random_scores(32, 32, 2);
  const MatrixU8 mask = ew_mask(scores, 0.5);
  float max_pruned = -1.0f, min_kept = 2.0f;
  for (std::size_t i = 0; i < scores.size(); ++i) {
    if (mask.data()[i])
      min_kept = std::min(min_kept, scores.data()[i]);
    else
      max_pruned = std::max(max_pruned, scores.data()[i]);
  }
  EXPECT_LE(max_pruned, min_kept);
}

TEST(EwMaskGlobal, AllocatesUnevenlyAcrossMatrices) {
  // Matrix A has systematically larger scores than B, so a global 50%
  // ranking should prune far more of B.
  Rng rng(3);
  MatrixF a(32, 32), b(32, 32);
  fill_uniform(a, rng, 0.5f, 1.0f);
  fill_uniform(b, rng, 0.0f, 0.5f);
  const auto masks = ew_mask_global({&a, &b}, 0.5);
  EXPECT_LT(mask_sparsity(masks[0]), 0.10);
  EXPECT_GT(mask_sparsity(masks[1]), 0.90);
}

TEST(VwMask, EveryVectorHasSameSparsity) {
  const MatrixF scores = random_scores(64, 16, 4);
  const std::size_t v = 8;
  const MatrixU8 mask = vw_mask(scores, 0.5, v);
  for (std::size_t c = 0; c < 16; ++c) {
    for (std::size_t r0 = 0; r0 < 64; r0 += v) {
      std::size_t pruned = 0;
      for (std::size_t r = 0; r < v; ++r) pruned += mask(r0 + r, c) == 0;
      EXPECT_EQ(pruned, 4u);
    }
  }
}

TEST(VwMask, RaggedTailVectorHandled) {
  const MatrixF scores = random_scores(10, 3, 5);  // 10 rows, v=4 -> tail 2
  const MatrixU8 mask = vw_mask(scores, 0.5, 4);
  EXPECT_NEAR(mask_sparsity(mask), 0.5, 0.1);
}

TEST(BwMask, PrunesWholeBlocks) {
  const MatrixF scores = random_scores(16, 16, 6);
  const MatrixU8 mask = bw_mask(scores, 0.5, 4);
  for (std::size_t br = 0; br < 4; ++br) {
    for (std::size_t bc = 0; bc < 4; ++bc) {
      std::size_t kept = 0;
      for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 4; ++c)
          kept += mask(br * 4 + r, bc * 4 + c) != 0;
      EXPECT_TRUE(kept == 0 || kept == 16u);
    }
  }
  EXPECT_NEAR(mask_sparsity(mask), 0.5, 1e-9);
}

TEST(BwMask, RejectsIndivisibleShape) {
  const MatrixF scores = random_scores(10, 10, 7);
  EXPECT_THROW(bw_mask(scores, 0.5, 3), std::invalid_argument);
}

TEST(Analysis, MaskSparsitiesMatchesManual) {
  MatrixU8 m(2, 2);
  m.fill(1);
  m(0, 0) = 0;
  const auto s = mask_sparsities({m});
  EXPECT_DOUBLE_EQ(s[0], 0.25);
}

TEST(Analysis, ColumnSparsities) {
  MatrixU8 m(4, 2);
  m.fill(1);
  m(0, 1) = m(1, 1) = 0;
  const auto cs = column_sparsities(m);
  EXPECT_FLOAT_EQ(cs[0], 0.0f);
  EXPECT_FLOAT_EQ(cs[1], 0.5f);
}

TEST(Analysis, UnitZeroFractions) {
  MatrixU8 m(4, 4);
  m.fill(1);
  m(0, 0) = m(0, 1) = m(1, 0) = m(1, 1) = 0;  // one fully-zero 2x2 unit
  const auto fr = unit_zero_fractions(m, 2, 2);
  ASSERT_EQ(fr.size(), 4u);
  EXPECT_FLOAT_EQ(fr[0], 1.0f);
  EXPECT_FLOAT_EQ(fr[1], 0.0f);
}

TEST(Analysis, DensityMapAveragesRegions) {
  MatrixU8 m(8, 8);
  m.fill(1);
  for (std::size_t r = 0; r < 4; ++r)
    for (std::size_t c = 0; c < 4; ++c) m(r, c) = 0;
  const MatrixF map = density_map(m, 2);
  EXPECT_FLOAT_EQ(map(0, 0), 0.0f);
  EXPECT_FLOAT_EQ(map(0, 1), 1.0f);
  EXPECT_FLOAT_EQ(map(1, 0), 1.0f);
  EXPECT_FLOAT_EQ(map(1, 1), 1.0f);
}

TEST(Analysis, RenderDensityMapShape) {
  const MatrixF map = density_map(MatrixU8(8, 8), 4);
  const std::string art = render_density_map(map);
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
}

}  // namespace
}  // namespace tilesparse
