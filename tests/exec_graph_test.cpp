// ExecGraph + ExecScheduler: model-level execution plans must be pure
// reorderings — a scheduled run (any stream count, with or without
// wide-N sharding) is bit-identical to the single-stream reference and
// to the old synchronous layer-by-layer path, for every weight format.

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/backend_registry.hpp"
#include "exec/graph.hpp"
#include "exec/scheduler.hpp"
#include "nn/bert_mini.hpp"
#include "nn/nmt_mini.hpp"
#include "nn/prune_experiment.hpp"
#include "prune/importance.hpp"
#include "prune/tw_pruner.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "util/threadpool.hpp"
#include "workload/datasets.hpp"

namespace tilesparse {
namespace {

MatrixF random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  MatrixF m(rows, cols);
  fill_normal(m, rng);
  return m;
}

bool bit_identical(const MatrixF& a, const MatrixF& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return a.size() == 0 ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

std::unique_ptr<PackedWeight> pack_for_test(const std::string& format,
                                            const MatrixF& w, std::size_t g) {
  const MatrixF scores = magnitude_scores(w);
  const TilePattern pattern = tw_pattern_from_scores(scores, 0.6, g);
  PackOptions options;
  options.pattern = &pattern;
  options.scores = &scores;
  return make_packed(format, w, options);
}

// ----------------------------------------------------------- graph basics

TEST(ExecGraphTest, DataflowDepsFollowSlots) {
  ExecGraph g;
  const auto a = g.add_slot("a");
  const auto b = g.add_slot("b");
  const auto c = g.add_slot("c");
  const auto n0 = g.add_host("write_a", {}, {a}, [](ExecGraph&) {});
  const auto n1 = g.add_host("write_b", {}, {b}, [](ExecGraph&) {});
  const auto n2 = g.add_host("sum", {a, b}, {c}, [](ExecGraph&) {});
  EXPECT_TRUE(g.nodes()[n0].deps.empty());
  EXPECT_TRUE(g.nodes()[n1].deps.empty());
  ASSERT_EQ(g.nodes()[n2].deps.size(), 2u);  // RAW on both writers
  EXPECT_EQ(g.nodes()[n2].deps[0], n0);
  EXPECT_EQ(g.nodes()[n2].deps[1], n1);

  // WAR: overwriting `a` must wait for the reader.
  const auto n3 = g.add_host("rewrite_a", {}, {a}, [](ExecGraph&) {});
  const auto& deps = g.nodes()[n3].deps;
  EXPECT_NE(std::find(deps.begin(), deps.end(), n2), deps.end());
}

TEST(ExecGraphTest, AddDepAcceptsEitherDirectionRejectsMalformed) {
  ExecGraph g;
  const auto s = g.add_slot("s");
  const auto n0 = g.add_host("first", {}, {s}, [](ExecGraph&) {});
  const auto n1 = g.add_host("second", {s}, {}, [](ExecGraph&) {});
  EXPECT_NO_THROW(g.add_dep(n1, n0));
  // A forward edge is representable (it closes a cycle here); the
  // static verifier and topo_order are what reject it, not add_dep.
  EXPECT_NO_THROW(g.add_dep(n0, n1));
  EXPECT_THROW(g.topo_order(), std::logic_error);
  EXPECT_THROW(g.add_dep(n0, n0), std::invalid_argument);
  EXPECT_THROW(g.add_dep(7, n0), std::invalid_argument);
}

TEST(ExecGraphTest, GemmNodeMatchesPackedMatmul) {
  const MatrixF w = random_matrix(48, 96, 3);
  const MatrixF a = random_matrix(20, 48, 4);
  const MatrixF bias = random_matrix(1, 96, 5);
  const auto packed = make_packed("dense", w);

  ExecGraph g;
  const auto in = g.add_slot("in");
  const auto out = g.add_slot("out");
  g.add_gemm("gemm", packed.get(), in, out, ExecContext{}, &bias);
  g.slot(in) = a;
  g.execute_node(g.topo_order().back());

  MatrixF expected = packed->matmul(ExecContext{}, a);
  for (std::size_t r = 0; r < expected.rows(); ++r)
    for (std::size_t c = 0; c < expected.cols(); ++c)
      expected(r, c) += bias(0, c);
  EXPECT_TRUE(bit_identical(g.slot(out), expected));
}

TEST(ExecGraphTest, RejectsBadNodes) {
  ExecGraph g;
  const auto s = g.add_slot("s");
  const auto t = g.add_slot("t");
  const MatrixF w = random_matrix(8, 8, 1);
  const auto packed = make_packed("dense", w);
  EXPECT_THROW(g.add_gemm("null", nullptr, s, t), std::invalid_argument);
  EXPECT_THROW(g.add_gemm("inplace", packed.get(), s, s),
               std::invalid_argument);
  EXPECT_THROW(g.add_gemm("range", packed.get(), s, 99),
               std::invalid_argument);
  EXPECT_THROW(g.add_host("nullfn", {s}, {t}, nullptr), std::invalid_argument);
}

// ------------------------------------------------- scheduler determinism

/// Builds a diamond of GEMMs: four independent projections of one
/// input feeding a host join, then a final wide GEMM — the same shape
/// of parallelism the attention block exposes.
struct DiamondGraph {
  ExecGraph graph;
  ExecGraph::SlotId in = 0, out = 0;
  std::vector<std::unique_ptr<PackedWeight>> weights;
};

DiamondGraph make_diamond(const std::string& format, std::size_t k,
                          std::size_t n, std::size_t wide_n) {
  DiamondGraph d;
  d.in = d.graph.add_slot("in");
  std::vector<ExecGraph::SlotId> mids;
  for (int i = 0; i < 4; ++i) {
    d.weights.push_back(
        pack_for_test(format, random_matrix(k, n, 100 + i), 8));
    const auto mid = d.graph.add_slot("mid" + std::to_string(i));
    d.graph.add_gemm("proj" + std::to_string(i), d.weights.back().get(), d.in,
                     mid);
    mids.push_back(mid);
  }
  const auto joined = d.graph.add_slot("joined");
  d.graph.add_host("join", mids, {joined}, [mids, joined](ExecGraph& g) {
    MatrixF sum = g.slot(mids[0]);
    for (std::size_t i = 1; i < mids.size(); ++i) {
      const MatrixF& m = g.slot(mids[i]);
      for (std::size_t j = 0; j < sum.size(); ++j)
        sum.data()[j] += m.data()[j];
    }
    g.slot(joined) = std::move(sum);
  });
  d.weights.push_back(
      pack_for_test(format, random_matrix(n, wide_n, 200), 8));
  d.out = d.graph.add_slot("out");
  d.graph.add_gemm("wide", d.weights.back().get(), joined, d.out);
  return d;
}

class SchedulerDeterminism : public ::testing::TestWithParam<std::string> {};

TEST_P(SchedulerDeterminism, BitIdenticalToSingleStreamAcrossStreams) {
  const std::string format = GetParam();
  const MatrixF a = random_matrix(33, 40, 9);

  DiamondGraph reference = make_diamond(format, 40, 56, 192);
  SchedulerOptions serial;
  serial.streams = 1;
  ExecScheduler single(serial);
  reference.graph.slot(reference.in) = a;
  single.run(reference.graph);
  const MatrixF expected = reference.graph.slot(reference.out);
  ASSERT_EQ(expected.rows(), a.rows());

  // A private pool with real workers: the determinism claim must hold
  // under true cross-thread execution even when the host (or a CI
  // sandbox) reports a single core and the global pool has no workers.
  ThreadPool pool(3);
  for (const std::size_t streams : {2u, 4u, 8u}) {
    DiamondGraph d = make_diamond(format, 40, 56, 192);
    SchedulerOptions options;
    options.streams = streams;
    options.min_shard_cols = 16;  // force wide-N sharding where supported
    options.dispatch_overhead_us = 0.0;
    ExecScheduler scheduler(options, &pool);
    // Repeated runs through the same scheduler reuse the shard plan.
    for (int rep = 0; rep < 3; ++rep) {
      d.graph.slot(d.in) = a;
      scheduler.run(d.graph);
      EXPECT_TRUE(bit_identical(d.graph.slot(d.out), expected))
          << format << " diverged at streams=" << streams << " rep=" << rep;
    }
    // Every built-in format slices exactly now — dense/csr by column
    // independence, the tile formats by carrying kept_rows (and
    // per-tile int8 scales) through the slice.
    EXPECT_GT(scheduler.last_stats().sharded_nodes, 0u)
        << format << " should shard the wide-N node";
  }
}

INSTANTIATE_TEST_SUITE_P(AllFormats, SchedulerDeterminism,
                         ::testing::Values("dense", "tw", "tew", "csr",
                                           "tw-int8"));

// --------------------------------------------------------- wide-N shards

TEST(ShardColsTest, AllFormatsSliceExactOnRaggedShapes) {
  // Deliberately awkward shapes: prime-ish N (so tile widths and shard
  // boundaries disagree), shard counts that do not divide it, slices
  // crossing the 16-column panel boundary and splitting tiles.
  for (const std::string format : {"dense", "csr", "tw", "tew", "tw-int8"}) {
    const MatrixF w = random_matrix(37, 117, 21);
    const MatrixF a = random_matrix(13, 37, 22);
    const auto packed = pack_for_test(format, w, 8);
    const MatrixF whole = packed->matmul(ExecContext{}, a);

    ASSERT_TRUE(packed->col_shardable());
    for (const std::size_t shards : {2u, 3u, 5u, 117u}) {
      MatrixF joined(a.rows(), w.cols());
      const std::size_t base = w.cols() / shards, rem = w.cols() % shards;
      std::size_t n0 = 0;
      for (std::size_t s = 0; s < shards; ++s) {
        const std::size_t n1 = n0 + base + (s < rem ? 1 : 0);
        const auto slice = packed->shard_cols(n0, n1);
        ASSERT_EQ(slice->k(), packed->k());
        ASSERT_EQ(slice->n(), n1 - n0);
        const MatrixF part = slice->matmul(ExecContext{}, a);
        for (std::size_t r = 0; r < part.rows(); ++r)
          for (std::size_t c = 0; c < part.cols(); ++c)
            joined(r, n0 + c) = part(r, c);
        n0 = n1;
      }
      EXPECT_TRUE(bit_identical(joined, whole))
          << format << " shard join diverged at shards=" << shards;
    }
  }
}

TEST(ShardColsTest, AllBuiltinFormatsAreShardable) {
  const MatrixF w = random_matrix(16, 32, 2);
  for (const std::string format : {"dense", "csr", "tw", "tew", "tw-int8"}) {
    const auto packed = pack_for_test(format, w, 8);
    EXPECT_TRUE(packed->col_shardable()) << format;
  }
}

TEST(ShardColsTest, RejectsBadRanges) {
  const MatrixF w = random_matrix(16, 32, 2);
  for (const std::string format : {"dense", "csr", "tw", "tew", "tw-int8"}) {
    const auto packed = pack_for_test(format, w, 8);
    EXPECT_THROW(packed->shard_cols(4, 4), std::invalid_argument) << format;
    EXPECT_THROW(packed->shard_cols(8, 40), std::invalid_argument) << format;
  }
}

// ----------------------------------------------------- model graph paths

TEST(ModelGraphTest, BertGraphForwardBitIdenticalToSyncAcrossFormats) {
  const BertMiniConfig config;
  TokenTeacherDataset dataset(64, config.seq, config.classes, config.dim, 77);
  BertMini model(config, dataset.embedding());
  Rng rng(123);
  const TokenBatch batch = dataset.sample(24, rng);

  ThreadPool pool(3);
  for (const std::string format : {"dense", "csr"}) {
    model.pack_weights(format);
    const MatrixF sync = model.forward(batch);

    for (const std::size_t streams : {1u, 4u}) {
      SchedulerOptions options;
      options.streams = streams;
      options.min_shard_cols = 16;
      options.dispatch_overhead_us = 0.0;
      ExecScheduler scheduler(options, &pool);
      model.set_exec_scheduler(&scheduler);
      const MatrixF scheduled = model.forward(batch);
      model.set_exec_scheduler(nullptr);
      EXPECT_TRUE(bit_identical(scheduled, sync))
          << format << " graph forward diverged at streams=" << streams;
    }
    model.clear_packed_weights();
  }
}

TEST(ModelGraphTest, BertGraphExposesAttentionParallelism) {
  const BertMiniConfig config;
  TokenTeacherDataset dataset(64, config.seq, config.classes, config.dim, 78);
  BertMini model(config, dataset.embedding());
  model.pack_weights("dense");
  ExecGraph& graph = model.build_exec_graph();
  // Q, K, V of one block are mutually independent GEMM nodes.
  EXPECT_GE(graph.max_gemm_width(), 3u);
  EXPECT_GT(graph.node_count(), 6u * config.layers);
}

TEST(ModelGraphTest, NmtGraphForwardBitIdenticalToSync) {
  ReverseDataset dataset(NmtMiniConfig{}.vocab, NmtMiniConfig{}.seq, 80);
  NmtMini model(NmtMiniConfig{});
  Rng rng(7);
  const Seq2SeqBatch batch = dataset.sample(16, rng);

  model.pack_weights("dense");
  const MatrixF sync = model.forward(batch);
  ThreadPool pool(3);
  SchedulerOptions options;
  options.streams = 4;
  ExecScheduler scheduler(options, &pool);
  model.set_exec_scheduler(&scheduler);
  const MatrixF scheduled = model.forward(batch);
  model.set_exec_scheduler(nullptr);
  model.clear_packed_weights();
  EXPECT_TRUE(bit_identical(scheduled, sync));
  // Encoder and decoder input projections are independent.
  model.pack_weights("dense");
  EXPECT_GE(model.build_exec_graph().max_gemm_width(), 2u);
  model.clear_packed_weights();
}

TEST(ModelGraphTest, GraphRebuildsWhenBackendsAreReplacedBehindIt) {
  // A graph built against one set of backends must NOT serve through
  // them after they are replaced by a path that bypasses pack_weights
  // (regression: an artifact load straight into the layers left the
  // cached graph holding dangling PackedWeight refs).
  const BertMiniConfig config;
  TokenTeacherDataset dataset(64, config.seq, config.classes, config.dim, 79);
  BertMini model(config, dataset.embedding());
  Rng rng(5);
  const TokenBatch batch = dataset.sample(8, rng);

  SchedulerOptions options;
  options.streams = 2;
  ThreadPool pool(2);
  ExecScheduler scheduler(options, &pool);
  model.pack_weights("dense");
  model.set_exec_scheduler(&scheduler);
  (void)model.forward(batch);  // builds the graph over the current backends

  // Replace every backend behind the model's back, as an artifact load
  // does, then forward again: must re-bind, not use the freed weights.
  for (Linear* layer : model.prunable_layers()) {
    layer->set_packed_weight(make_packed("csr", layer->weight().value));
  }
  const MatrixF scheduled = model.forward(batch);
  model.set_exec_scheduler(nullptr);
  const MatrixF sync = model.forward(batch);
  model.clear_packed_weights();
  EXPECT_TRUE(bit_identical(scheduled, sync));
}

TEST(ModelGraphTest, EvaluateWithFormatThroughSchedulerMatchesSync) {
  auto task = make_bert_cls_task(/*pretrain_steps=*/8);
  const double sync = evaluate_with_format(*task, "dense");
  SchedulerOptions options;
  options.streams = 4;
  const double scheduled =
      evaluate_with_format(*task, "dense", nullptr, ExecContext{}, options);
  EXPECT_DOUBLE_EQ(scheduled, sync);
}

TEST(ModelGraphTest, VggEvaluateWithFormatServesPacked) {
  // The CNN task now routes its im2col GEMMs through PackedWeight.
  auto task = make_vgg_task(/*pretrain_steps=*/8);
  const double dense_eval = task->evaluate();
  const double packed_eval = evaluate_with_format(*task, "dense");
  EXPECT_NEAR(packed_eval, dense_eval, 1e-6);
  const double csr_eval = evaluate_with_format(*task, "csr");
  EXPECT_NEAR(csr_eval, dense_eval, 1e-6);
}

// ------------------------------------------------------- error handling

TEST(SchedulerTest, HostNodeExceptionPropagates) {
  ExecGraph g;
  const auto s = g.add_slot("s");
  g.add_host("boom", {}, {s}, [](ExecGraph&) {
    throw std::runtime_error("node failure");
  });
  // A few dependents that must be abandoned cleanly.
  for (int i = 0; i < 4; ++i) {
    g.add_host("after" + std::to_string(i), {s}, {},
               [](ExecGraph&) {});
  }
  ThreadPool pool(3);
  SchedulerOptions options;
  options.streams = 4;
  ExecScheduler scheduler(options, &pool);
  EXPECT_THROW(scheduler.run(g), std::runtime_error);
  // The scheduler must stay usable after a failed run.
  ExecGraph ok;
  const auto t = ok.add_slot("t");
  std::atomic<int> runs{0};
  ok.add_host("fine", {}, {t}, [&runs](ExecGraph&) { ++runs; });
  scheduler.run(ok);
  EXPECT_EQ(runs.load(), 1);
}

TEST(SchedulerTest, RecoversBitIdenticalAfterMidGraphThrow) {
  // Serving-runtime regression: a worker's scheduler absorbs a node
  // exception mid-graph and must then serve healthy GEMM graphs with
  // bit-identical results — no stale plan, stream, or pool state may
  // leak out of the failed run.  Several failure/recovery cycles, since
  // the first recovery can pass while a later one trips on residue.
  const MatrixF w = random_matrix(32, 64, 21);
  const MatrixF a = random_matrix(9, 32, 22);
  const auto packed = make_packed("dense", w);
  const MatrixF expected = packed->matmul(ExecContext{}, a);

  ThreadPool pool(3);
  SchedulerOptions options;
  options.streams = 4;
  ExecScheduler scheduler(options, &pool);

  for (int cycle = 0; cycle < 5; ++cycle) {
    ExecGraph bad;
    const auto in = bad.add_slot("in");
    const auto mid = bad.add_slot("mid");
    bad.add_gemm("gemm", packed.get(), in, mid);
    bad.add_host("boom", {mid}, {}, [](ExecGraph&) {
      throw std::runtime_error("mid-graph node failure");
    });
    bad.slot(in) = a;
    EXPECT_THROW(scheduler.run(bad), std::runtime_error);

    ExecGraph good;
    const auto gin = good.add_slot("in");
    const auto gout = good.add_slot("out");
    good.add_gemm("gemm", packed.get(), gin, gout);
    good.slot(gin) = a;
    scheduler.run(good);
    ASSERT_TRUE(bit_identical(good.slot(gout), expected)) << "cycle " << cycle;
  }
}

TEST(SchedulerTest, ReplansWhenTheGraphGrowsNewNodes) {
  // The plan cache is keyed on (build id, node count, streams); a graph
  // that gained nodes between runs of the SAME scheduler must be
  // re-expanded, not indexed with the stale plan (regression: this was
  // an out-of-bounds read).
  const MatrixF w = random_matrix(24, 48, 5);
  const auto packed = make_packed("dense", w);
  ExecGraph g;
  const auto in = g.add_slot("in");
  const auto mid = g.add_slot("mid");
  g.add_gemm("first", packed.get(), in, mid);

  ThreadPool pool(3);
  SchedulerOptions options;
  options.streams = 4;
  ExecScheduler scheduler(options, &pool);
  g.slot(in) = random_matrix(7, 24, 6);
  scheduler.run(g);
  const std::size_t tasks_before = scheduler.last_stats().tasks;

  const auto w2 = make_packed("dense", random_matrix(48, 16, 8));
  const auto out = g.add_slot("out");
  g.add_gemm("second", w2.get(), mid, out);
  scheduler.run(g);
  EXPECT_GT(scheduler.last_stats().tasks, tasks_before);
  EXPECT_EQ(g.slot(out).cols(), 16u);
  const MatrixF expected = w2->matmul(ExecContext{}, g.slot(mid));
  EXPECT_TRUE(bit_identical(g.slot(out), expected));
}

TEST(SchedulerTest, EmptyGraphIsANoop) {
  ExecGraph g;
  ExecScheduler scheduler;
  EXPECT_NO_THROW(scheduler.run(g));
  EXPECT_EQ(scheduler.last_stats().tasks, 0u);
}

}  // namespace
}  // namespace tilesparse
