// Conformance suite for the unified weight-execution API: every
// registered PackedWeight format must compute the same logical
// C = alpha * A * W + beta * C, where W is whatever to_dense()
// reconstructs (the packed representation is ground truth).  fp32
// formats must match the dense reference within 1e-4; the int8 format
// is held to its quantisation error instead.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>

#include "exec/backend_registry.hpp"
#include "exec/planner.hpp"
#include "nn/bert_mini.hpp"
#include "nn/nmt_mini.hpp"
#include "nn/prune_experiment.hpp"
#include "prune/importance.hpp"
#include "prune/tw_pruner.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "workload/datasets.hpp"

namespace tilesparse {
namespace {

MatrixF random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  MatrixF m(rows, cols);
  fill_normal(m, rng);
  return m;
}

/// Packs `w` under `format`, supplying a TW pattern (sparsity 0.6)
/// where the format requires one.
std::unique_ptr<PackedWeight> pack_for_test(const std::string& format,
                                            const MatrixF& w, std::size_t g,
                                            double sparsity = 0.6) {
  const MatrixF scores = magnitude_scores(w);
  const TilePattern pattern = tw_pattern_from_scores(scores, sparsity, g);
  PackOptions options;
  options.pattern = &pattern;
  options.scores = &scores;
  options.tew_delta = 0.05;
  return make_packed(format, w, options);
}

// ------------------------------------------------------------ conformance

struct ConformanceCase {
  std::size_t m, k, n, g;
  const char* label;
};

class BackendConformance
    : public ::testing::TestWithParam<std::tuple<std::string, ConformanceCase>> {
};

TEST_P(BackendConformance, MatmulMatchesOwnDenseReconstruction) {
  const auto& [format, shape] = GetParam();
  const MatrixF w = random_matrix(shape.k, shape.n, 7 + shape.k);
  const MatrixF a = random_matrix(shape.m, shape.k, 11 + shape.m);

  const auto packed = pack_for_test(format, w, shape.g);
  ASSERT_NE(packed, nullptr);
  EXPECT_EQ(packed->format(), format);
  EXPECT_EQ(packed->k(), shape.k);
  EXPECT_EQ(packed->n(), shape.n);
  EXPECT_GT(packed->bytes(), 0u);
  EXPECT_GT(packed->macs(shape.m), 0.0);

  const MatrixF dense = packed->to_dense();
  ASSERT_EQ(dense.rows(), shape.k);
  ASSERT_EQ(dense.cols(), shape.n);
  const MatrixF ref = matmul_reference(a, dense);
  const MatrixF c = packed->matmul(ExecContext{}, a);

  if (format == "tw-int8") {
    // int8 executes with dynamically quantised activations; error bound
    // is the activation quantisation step times the reduction depth.
    const double denom = frobenius_norm(ref) + 1e-6;
    EXPECT_LT(max_abs_diff(c, ref) / denom * std::sqrt(ref.size()), 0.15)
        << format << " " << shape.label;
  } else {
    EXPECT_LT(max_abs_diff(c, ref), 1e-4f) << format << " " << shape.label;
  }
}

TEST_P(BackendConformance, AlphaBetaSemantics) {
  const auto& [format, shape] = GetParam();
  const MatrixF w = random_matrix(shape.k, shape.n, 17 + shape.k);
  const MatrixF a = random_matrix(shape.m, shape.k, 19 + shape.m);
  const auto packed = pack_for_test(format, w, shape.g);

  MatrixF c = random_matrix(shape.m, shape.n, 23);
  const MatrixF c0 = c;
  ExecContext ctx;
  ctx.alpha = 2.0f;
  ctx.beta = 0.5f;
  packed->matmul(ctx, a, c);

  // Self-consistency first: alpha/beta plumbing must scale exactly what
  // the backend's own plain product computes — valid for every format
  // including int8, whose accumulate is deterministic per input.
  const MatrixF plain = packed->matmul(ExecContext{}, a);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], 2.0f * plain.data()[i] + 0.5f * c0.data()[i],
                1e-4f)
        << format << " " << shape.label;
  }

  if (format == "tw-int8") return;  // vs-reference covered with quant tolerance
  const MatrixF ab = matmul_reference(a, packed->to_dense());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], 2.0f * ab.data()[i] + 0.5f * c0.data()[i], 1e-3f)
        << format << " " << shape.label;
  }
}

TEST_P(BackendConformance, Fp16ActivationsStayClose) {
  const auto& [format, shape] = GetParam();
  const MatrixF w = random_matrix(shape.k, shape.n, 29 + shape.k);
  const MatrixF a = random_matrix(shape.m, shape.k, 31 + shape.m);
  const auto packed = pack_for_test(format, w, shape.g);

  ExecContext fp16;
  fp16.numerics = Numerics::kFp16;
  ASSERT_TRUE(packed->supports(Numerics::kFp16));
  const MatrixF c16 = packed->matmul(fp16, a);
  const MatrixF c32 = packed->matmul(ExecContext{}, a);
  // fp16 inputs, fp32 accumulate: relative error ~2^-11 per operand.
  const float scale = static_cast<float>(shape.k);
  EXPECT_LT(max_abs_diff(c16, c32), 0.01f * scale) << format << " "
                                                   << shape.label;
}

constexpr ConformanceCase kCases[] = {
    {8, 64, 96, 16, "divisible"},
    {7, 50, 70, 16, "K,N not divisible by G"},
    {1, 48, 32, 16, "1-row A"},
    {5, 16, 16, 16, "single tile"},
    {16, 96, 128, 32, "wider"},
};

INSTANTIATE_TEST_SUITE_P(
    AllFormats, BackendConformance,
    ::testing::Combine(::testing::Values("dense", "tw", "tew", "csr",
                                         "tw-int8"),
                       ::testing::ValuesIn(kCases)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param) + "_" +
                         std::to_string(std::get<1>(info.param).k) + "x" +
                         std::to_string(std::get<1>(info.param).n) + "m" +
                         std::to_string(std::get<1>(info.param).m);
      for (char& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

TEST(BackendConformance, CoversEveryRegisteredFormat) {
  // The parameterized suite hard-codes the format list; fail loudly if
  // someone registers a sixth built-in without extending coverage.
  EXPECT_EQ(registered_formats(),
            (std::vector<std::string>{"csr", "dense", "tew", "tw", "tw-int8"}));
}

// --------------------------------------------------------- edge patterns

TEST(BackendEdge, FullyPrunedTilesExecuteAsZeroColumns) {
  // Hand-build a pattern whose middle tile keeps no rows at all.
  const std::size_t k = 32, n = 48, g = 16;
  std::vector<std::uint8_t> col_keep(n, 1);
  TilePattern pattern = reorganize_columns(k, n, g, col_keep);
  ASSERT_EQ(pattern.tiles.size(), 3u);
  std::fill(pattern.tiles[1].row_keep.begin(), pattern.tiles[1].row_keep.end(),
            std::uint8_t{0});
  validate_pattern(pattern);

  const MatrixF w = random_matrix(k, n, 41);
  const MatrixF a = random_matrix(4, k, 43);
  for (const std::string format : {"tw", "tw-int8"}) {
    PackOptions options;
    options.pattern = &pattern;
    const auto packed = make_packed(format, w, options);
    const MatrixF c = packed->matmul(ExecContext{}, a);
    // Columns owned by the dead tile must be exactly zero.
    for (std::size_t r = 0; r < c.rows(); ++r)
      for (std::int32_t col : pattern.tiles[1].out_cols)
        EXPECT_EQ(c(r, static_cast<std::size_t>(col)), 0.0f) << format;
    const MatrixF ref = matmul_reference(a, packed->to_dense());
    if (format == "tw") {
      EXPECT_LT(max_abs_diff(c, ref), 1e-4f);
    }
  }
}

TEST(BackendEdge, FullyPrunedMatrixYieldsZeroOutput) {
  const std::size_t k = 24, n = 32;
  MatrixF w(k, n);  // all-zero weights
  const TilePattern pattern =
      tw_pattern_from_scores(random_matrix(k, n, 47), 0.99, 8);
  MatrixF pruned = w;
  PackOptions options;
  options.pattern = &pattern;
  const auto packed = make_packed("tw", pruned, options);
  const MatrixF a = random_matrix(3, k, 53);
  const MatrixF c = packed->matmul(ExecContext{}, a);
  for (float v : c.flat()) EXPECT_EQ(v, 0.0f);
}

// ------------------------------------------------------ numerics support

TEST(BackendNumerics, Int8SupportIsFormatInherent) {
  const MatrixF w = random_matrix(32, 32, 59);
  const MatrixF a = random_matrix(4, 32, 61);
  for (const std::string& format : registered_formats()) {
    const auto packed = pack_for_test(format, w, 16);
    ExecContext int8;
    int8.numerics = Numerics::kInt8;
    if (packed->supports(Numerics::kInt8)) {
      const MatrixF c = packed->matmul(int8, a);
      EXPECT_EQ(c.rows(), 4u) << format;
    } else {
      MatrixF c(4, 32);
      EXPECT_THROW(packed->matmul(int8, a, c), std::invalid_argument)
          << format;
    }
  }
  // The two int8-capable backends.
  EXPECT_TRUE(pack_for_test("dense", w, 16)->supports(Numerics::kInt8));
  EXPECT_TRUE(pack_for_test("tw-int8", w, 16)->supports(Numerics::kInt8));
  EXPECT_FALSE(pack_for_test("tw", w, 16)->supports(Numerics::kInt8));
}

// ------------------------------------------------------------- registry

TEST(BackendRegistry, UnknownFormatThrows) {
  const MatrixF w = random_matrix(8, 8, 67);
  EXPECT_THROW(make_packed("no-such-format", w), std::out_of_range);
}

TEST(BackendRegistry, TwFamilyRequiresPattern) {
  const MatrixF w = random_matrix(16, 16, 71);
  for (const char* format : {"tw", "tew", "tw-int8"})
    EXPECT_THROW(make_packed(format, w), std::invalid_argument) << format;
  // Pattern-free formats pack without options.
  EXPECT_NO_THROW(make_packed("dense", w));
  EXPECT_NO_THROW(make_packed("csr", w));
}

TEST(BackendRegistry, CustomBackendPlugsIn) {
  register_backend("unit-dense",
                   [](const MatrixF& w, const PackOptions&) {
                     return make_packed("dense", w);
                   });
  EXPECT_TRUE(backend_registered("unit-dense"));
  const MatrixF w = random_matrix(8, 12, 73);
  const auto packed = make_packed("unit-dense", w);
  EXPECT_EQ(packed->format(), "dense");
  const MatrixF a = random_matrix(2, 8, 79);
  EXPECT_LT(max_abs_diff(packed->matmul(ExecContext{}, a),
                         matmul_reference(a, w)),
            1e-4f);
}

// -------------------------------------------------------------- planner

TEST(Planner, DenseWeightsChooseDense) {
  const MatrixF w = random_matrix(64, 64, 83);
  const auto ranked = rank_formats(w, nullptr);
  EXPECT_EQ(ranked.front().format, "dense");
}

TEST(Planner, ModerateTwSparsityChoosesTw) {
  MatrixF w = random_matrix(64, 96, 89);
  const TilePattern pattern =
      tw_pattern_from_scores(magnitude_scores(w), 0.75, 16);
  apply_pattern(pattern, w);
  const auto ranked = rank_formats(w, &pattern);
  EXPECT_EQ(ranked.front().format, "tw");
  // CSR at 75% must still lose to TW (the gather/scatter penalty — the
  // paper's core efficiency argument).
  for (const auto& choice : ranked) {
    if (choice.format == "csr") {
      EXPECT_GT(choice.cost, ranked.front().cost);
    }
  }
}

TEST(Planner, ExtremeUnstructuredSparsityChoosesCsr) {
  Rng rng(97);
  MatrixF w(64, 96);
  // 1% dense, unstructured.
  for (float& v : w.flat())
    if (rng.uniform() < 0.01) v = rng.normal();
  const auto ranked = rank_formats(w, nullptr);
  EXPECT_EQ(ranked.front().format, "csr");
}

TEST(Planner, Int8OptInWinsWhenAllowed) {
  MatrixF w = random_matrix(64, 96, 101);
  const TilePattern pattern =
      tw_pattern_from_scores(magnitude_scores(w), 0.5, 16);
  apply_pattern(pattern, w);
  PlannerOptions options;
  options.allow_int8 = true;
  const auto ranked = rank_formats(w, &pattern, options);
  EXPECT_EQ(ranked.front().format, "tw-int8");
}

TEST(Planner, PackWeightBuildsTheWinner) {
  MatrixF w = random_matrix(48, 64, 103);
  const TilePattern pattern =
      tw_pattern_from_scores(magnitude_scores(w), 0.8, 16);
  apply_pattern(pattern, w);
  PackOptions pack;
  pack.pattern = &pattern;
  const auto packed = pack_weight(w, pack);
  EXPECT_EQ(packed->format(), rank_formats(w, &pattern).front().format);
  const MatrixF a = random_matrix(4, 48, 107);
  EXPECT_LT(max_abs_diff(packed->matmul(ExecContext{}, a),
                         matmul_reference(a, packed->to_dense())),
            1e-4f);
}

// -------------------------------------------- NN stack packed inference

TEST(PackedInference, TwPrunedBertMatchesDenseMaskedReference) {
  // Acceptance: a TW-pruned bert_mini forward pass through Linear-held
  // packed weights matches the dense-masked reference within 1e-4.
  BertMiniConfig config;
  config.layers = 1;
  TokenTeacherDataset data(64, config.seq, config.classes, config.dim, 109);
  BertMini model(config, data.embedding());

  // Prune every prunable weight to 50% TW in place.
  std::vector<Param*> weights = model.prunable_weights();
  std::vector<TilePattern> patterns;
  for (Param* p : weights) {
    const TilePattern pattern =
        tw_pattern_from_scores(magnitude_scores(p->value), 0.5, 16);
    apply_pattern(pattern, p->value);
    patterns.push_back(pattern);
  }

  Rng rng(113);
  const TokenBatch batch = data.sample(8, rng);
  const MatrixF dense_logits = model.forward(batch);  // dense-masked ref

  model.pack_weights("tw", &patterns);
  const MatrixF packed_logits = model.forward(batch);
  EXPECT_LT(max_abs_diff(packed_logits, dense_logits), 1e-4f);

  // Every other fp32 format serves the same model.  ("tew" packed from
  // already-zeroed weights has an empty remainder — equivalent to "tw";
  // see PackOptions.scores — which is exactly why it must still match.)
  for (const std::string format : {"tew", "csr", "dense"}) {
    model.pack_weights(format, &patterns);
    const MatrixF logits = model.forward(batch);
    EXPECT_LT(max_abs_diff(logits, dense_logits), 1e-3f) << format;
  }

  model.clear_packed_weights();
  const MatrixF back = model.forward(batch);
  EXPECT_LT(max_abs_diff(back, dense_logits), 1e-6f);
}

TEST(PackedInference, NmtLstmRunsPacked) {
  NmtMiniConfig config;
  NmtMini model(config);

  std::vector<Param*> weights = model.prunable_weights();
  ASSERT_EQ(weights.size(), 5u);
  std::vector<TilePattern> patterns;
  for (Param* p : weights) {
    const TilePattern pattern =
        tw_pattern_from_scores(magnitude_scores(p->value), 0.4, 8);
    apply_pattern(pattern, p->value);
    patterns.push_back(pattern);
  }

  ReverseDataset data(config.vocab, config.seq, 127);
  Rng rng(131);
  const Seq2SeqBatch batch = data.sample(4, rng);
  const MatrixF dense_logits = model.forward(batch);

  model.pack_weights("tw", &patterns);
  const MatrixF packed_logits = model.forward(batch);
  EXPECT_LT(max_abs_diff(packed_logits, dense_logits), 1e-4f);
  model.clear_packed_weights();
}

TEST(PackedInference, EvaluateWithFormatRoundTrips) {
  auto task = make_bert_cls_task(/*pretrain_steps=*/20, 137);
  const double dense_metric = task->evaluate();
  // Dense packing changes nothing about the math.
  const double packed_metric = evaluate_with_format(*task, "dense");
  EXPECT_NEAR(packed_metric, dense_metric, 1e-9);
  // And the task is back on the dense path afterwards.
  EXPECT_NEAR(task->evaluate(), dense_metric, 1e-9);
}

}  // namespace
}  // namespace tilesparse
