// Conformance suite for the unified weight-execution API: every
// registered PackedWeight format must compute the same logical
// C = alpha * A * W + beta * C, where W is whatever to_dense()
// reconstructs (the packed representation is ground truth).  fp32
// formats must match the dense reference within 1e-4; the int8 format
// is held to its quantisation error instead.

#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <tuple>

#include "exec/backend_registry.hpp"
#include "exec/planner.hpp"
#include "gemm/dense_gemm.hpp"
#include "gemm/micro_kernel.hpp"
#include "nn/bert_mini.hpp"
#include "nn/nmt_mini.hpp"
#include "nn/prune_experiment.hpp"
#include "prune/importance.hpp"
#include "prune/tw_pruner.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "workload/datasets.hpp"

namespace tilesparse {
namespace {

MatrixF random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  MatrixF m(rows, cols);
  fill_normal(m, rng);
  return m;
}

/// Packs `w` under `format`, supplying a TW pattern (sparsity 0.6)
/// where the format requires one.
std::unique_ptr<PackedWeight> pack_for_test(const std::string& format,
                                            const MatrixF& w, std::size_t g,
                                            double sparsity = 0.6) {
  const MatrixF scores = magnitude_scores(w);
  const TilePattern pattern = tw_pattern_from_scores(scores, sparsity, g);
  PackOptions options;
  options.pattern = &pattern;
  options.scores = &scores;
  options.tew_delta = 0.05;
  return make_packed(format, w, options);
}

// ------------------------------------------------------------ conformance

struct ConformanceCase {
  std::size_t m, k, n, g;
  const char* label;
};

class BackendConformance
    : public ::testing::TestWithParam<std::tuple<std::string, ConformanceCase>> {
};

TEST_P(BackendConformance, MatmulMatchesOwnDenseReconstruction) {
  const auto& [format, shape] = GetParam();
  const MatrixF w = random_matrix(shape.k, shape.n, 7 + shape.k);
  const MatrixF a = random_matrix(shape.m, shape.k, 11 + shape.m);

  const auto packed = pack_for_test(format, w, shape.g);
  ASSERT_NE(packed, nullptr);
  EXPECT_EQ(packed->format(), format);
  EXPECT_EQ(packed->k(), shape.k);
  EXPECT_EQ(packed->n(), shape.n);
  EXPECT_GT(packed->bytes(), 0u);
  EXPECT_GT(packed->macs(shape.m), 0.0);

  const MatrixF dense = packed->to_dense();
  ASSERT_EQ(dense.rows(), shape.k);
  ASSERT_EQ(dense.cols(), shape.n);
  const MatrixF ref = matmul_reference(a, dense);
  const MatrixF c = packed->matmul(ExecContext{}, a);

  if (format == "tw-int8") {
    // int8 executes with dynamically quantised activations; error bound
    // is the activation quantisation step times the reduction depth.
    const double denom = frobenius_norm(ref) + 1e-6;
    EXPECT_LT(max_abs_diff(c, ref) / denom * std::sqrt(ref.size()), 0.15)
        << format << " " << shape.label;
  } else {
    EXPECT_LT(max_abs_diff(c, ref), 1e-4f) << format << " " << shape.label;
  }
}

TEST_P(BackendConformance, AlphaBetaSemantics) {
  const auto& [format, shape] = GetParam();
  const MatrixF w = random_matrix(shape.k, shape.n, 17 + shape.k);
  const MatrixF a = random_matrix(shape.m, shape.k, 19 + shape.m);
  const auto packed = pack_for_test(format, w, shape.g);

  MatrixF c = random_matrix(shape.m, shape.n, 23);
  const MatrixF c0 = c;
  ExecContext ctx;
  ctx.alpha = 2.0f;
  ctx.beta = 0.5f;
  packed->matmul(ctx, a, c);

  // Self-consistency first: alpha/beta plumbing must scale exactly what
  // the backend's own plain product computes — valid for every format
  // including int8, whose accumulate is deterministic per input.
  const MatrixF plain = packed->matmul(ExecContext{}, a);
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], 2.0f * plain.data()[i] + 0.5f * c0.data()[i],
                1e-4f)
        << format << " " << shape.label;
  }

  if (format == "tw-int8") return;  // vs-reference covered with quant tolerance
  const MatrixF ab = matmul_reference(a, packed->to_dense());
  for (std::size_t i = 0; i < c.size(); ++i) {
    EXPECT_NEAR(c.data()[i], 2.0f * ab.data()[i] + 0.5f * c0.data()[i], 1e-3f)
        << format << " " << shape.label;
  }
}

TEST_P(BackendConformance, Fp16ActivationsStayClose) {
  const auto& [format, shape] = GetParam();
  const MatrixF w = random_matrix(shape.k, shape.n, 29 + shape.k);
  const MatrixF a = random_matrix(shape.m, shape.k, 31 + shape.m);
  const auto packed = pack_for_test(format, w, shape.g);

  ExecContext fp16;
  fp16.numerics = Numerics::kFp16;
  ASSERT_TRUE(packed->supports(Numerics::kFp16));
  const MatrixF c16 = packed->matmul(fp16, a);
  const MatrixF c32 = packed->matmul(ExecContext{}, a);
  // fp16 inputs, fp32 accumulate: relative error ~2^-11 per operand.
  const float scale = static_cast<float>(shape.k);
  EXPECT_LT(max_abs_diff(c16, c32), 0.01f * scale) << format << " "
                                                   << shape.label;
}

constexpr ConformanceCase kCases[] = {
    {8, 64, 96, 16, "divisible"},
    {7, 50, 70, 16, "K,N not divisible by G"},
    {1, 48, 32, 16, "1-row A"},
    {5, 16, 16, 16, "single tile"},
    {16, 96, 128, 32, "wider"},
};

INSTANTIATE_TEST_SUITE_P(
    AllFormats, BackendConformance,
    ::testing::Combine(::testing::Values("dense", "tw", "tew", "csr",
                                         "tw-int8"),
                       ::testing::ValuesIn(kCases)),
    [](const auto& info) {
      std::string name = std::get<0>(info.param) + "_" +
                         std::to_string(std::get<1>(info.param).k) + "x" +
                         std::to_string(std::get<1>(info.param).n) + "m" +
                         std::to_string(std::get<1>(info.param).m);
      for (char& ch : name)
        if (ch == '-') ch = '_';
      return name;
    });

TEST(BackendConformance, CoversEveryRegisteredFormat) {
  // The parameterized suite hard-codes the format list; fail loudly if
  // someone registers a sixth built-in without extending coverage.
  EXPECT_EQ(registered_formats(),
            (std::vector<std::string>{"csr", "dense", "tew", "tw", "tw-int8"}));
}

// --------------------------------------------------------- edge patterns

TEST(BackendEdge, FullyPrunedTilesExecuteAsZeroColumns) {
  // Hand-build a pattern whose middle tile keeps no rows at all.
  const std::size_t k = 32, n = 48, g = 16;
  std::vector<std::uint8_t> col_keep(n, 1);
  TilePattern pattern = reorganize_columns(k, n, g, col_keep);
  ASSERT_EQ(pattern.tiles.size(), 3u);
  std::fill(pattern.tiles[1].row_keep.begin(), pattern.tiles[1].row_keep.end(),
            std::uint8_t{0});
  validate_pattern(pattern);

  const MatrixF w = random_matrix(k, n, 41);
  const MatrixF a = random_matrix(4, k, 43);
  for (const std::string format : {"tw", "tw-int8"}) {
    PackOptions options;
    options.pattern = &pattern;
    const auto packed = make_packed(format, w, options);
    const MatrixF c = packed->matmul(ExecContext{}, a);
    // Columns owned by the dead tile must be exactly zero.
    for (std::size_t r = 0; r < c.rows(); ++r)
      for (std::int32_t col : pattern.tiles[1].out_cols)
        EXPECT_EQ(c(r, static_cast<std::size_t>(col)), 0.0f) << format;
    const MatrixF ref = matmul_reference(a, packed->to_dense());
    if (format == "tw") {
      EXPECT_LT(max_abs_diff(c, ref), 1e-4f);
    }
  }
}

TEST(BackendEdge, FullyPrunedMatrixYieldsZeroOutput) {
  const std::size_t k = 24, n = 32;
  MatrixF w(k, n);  // all-zero weights
  const TilePattern pattern =
      tw_pattern_from_scores(random_matrix(k, n, 47), 0.99, 8);
  MatrixF pruned = w;
  PackOptions options;
  options.pattern = &pattern;
  const auto packed = make_packed("tw", pruned, options);
  const MatrixF a = random_matrix(3, k, 53);
  const MatrixF c = packed->matmul(ExecContext{}, a);
  for (float v : c.flat()) EXPECT_EQ(v, 0.0f);
}

// ------------------------------------------------------ numerics support

TEST(BackendNumerics, Int8SupportIsFormatInherent) {
  const MatrixF w = random_matrix(32, 32, 59);
  const MatrixF a = random_matrix(4, 32, 61);
  for (const std::string& format : registered_formats()) {
    const auto packed = pack_for_test(format, w, 16);
    ExecContext int8;
    int8.numerics = Numerics::kInt8;
    if (packed->supports(Numerics::kInt8)) {
      const MatrixF c = packed->matmul(int8, a);
      EXPECT_EQ(c.rows(), 4u) << format;
    } else {
      MatrixF c(4, 32);
      EXPECT_THROW(packed->matmul(int8, a, c), std::invalid_argument)
          << format;
    }
  }
  // The two int8-capable backends.
  EXPECT_TRUE(pack_for_test("dense", w, 16)->supports(Numerics::kInt8));
  EXPECT_TRUE(pack_for_test("tw-int8", w, 16)->supports(Numerics::kInt8));
  EXPECT_FALSE(pack_for_test("tw", w, 16)->supports(Numerics::kInt8));
}

// ------------------------------------------------------------- registry

TEST(BackendRegistry, UnknownFormatThrows) {
  const MatrixF w = random_matrix(8, 8, 67);
  EXPECT_THROW(make_packed("no-such-format", w), std::out_of_range);
}

TEST(BackendRegistry, TwFamilyRequiresPattern) {
  const MatrixF w = random_matrix(16, 16, 71);
  for (const char* format : {"tw", "tew", "tw-int8"})
    EXPECT_THROW(make_packed(format, w), std::invalid_argument) << format;
  // Pattern-free formats pack without options.
  EXPECT_NO_THROW(make_packed("dense", w));
  EXPECT_NO_THROW(make_packed("csr", w));
}

TEST(BackendRegistry, CustomBackendPlugsIn) {
  register_backend("unit-dense",
                   [](const MatrixF& w, const PackOptions&) {
                     return make_packed("dense", w);
                   });
  EXPECT_TRUE(backend_registered("unit-dense"));
  const MatrixF w = random_matrix(8, 12, 73);
  const auto packed = make_packed("unit-dense", w);
  EXPECT_EQ(packed->format(), "dense");
  const MatrixF a = random_matrix(2, 8, 79);
  EXPECT_LT(max_abs_diff(packed->matmul(ExecContext{}, a),
                         matmul_reference(a, w)),
            1e-4f);
}

// -------------------------------------------------------------- planner

TEST(Planner, DenseWeightsChooseDense) {
  const MatrixF w = random_matrix(64, 64, 83);
  const auto ranked = rank_formats(w, nullptr);
  EXPECT_EQ(ranked.front().format, "dense");
}

TEST(Planner, ModerateTwSparsityChoosesTw) {
  MatrixF w = random_matrix(64, 96, 89);
  const TilePattern pattern =
      tw_pattern_from_scores(magnitude_scores(w), 0.75, 16);
  apply_pattern(pattern, w);
  const auto ranked = rank_formats(w, &pattern);
  EXPECT_EQ(ranked.front().format, "tw");
  // CSR at 75% must still lose to TW (the gather/scatter penalty — the
  // paper's core efficiency argument).
  for (const auto& choice : ranked) {
    if (choice.format == "csr") {
      EXPECT_GT(choice.cost, ranked.front().cost);
    }
  }
}

TEST(Planner, ExtremeUnstructuredSparsityChoosesCsr) {
  Rng rng(97);
  MatrixF w(64, 96);
  // 1% dense, unstructured.
  for (float& v : w.flat())
    if (rng.uniform() < 0.01) v = rng.normal();
  const auto ranked = rank_formats(w, nullptr);
  EXPECT_EQ(ranked.front().format, "csr");
}

TEST(Planner, Int8OptInWinsWhenAllowed) {
  MatrixF w = random_matrix(64, 96, 101);
  const TilePattern pattern =
      tw_pattern_from_scores(magnitude_scores(w), 0.5, 16);
  apply_pattern(pattern, w);
  PlannerOptions options;
  options.allow_int8 = true;
  const auto ranked = rank_formats(w, &pattern, options);
  EXPECT_EQ(ranked.front().format, "tw-int8");
}

TEST(Planner, MeasuredCalibrationOverridesConstants) {
  // Same setup as Int8OptInWinsWhenAllowed: under the shipped defaults
  // tw-int8 ranks first.  A host whose measured int8 kernel is slower
  // than fp32 (int8_mac_discount > 1, as calibrate_planner observes on
  // AVX2 hosts where the FMA fp32 path is excellent) must flip the
  // ranking back to "tw" — the planner now believes measurements, not
  // guesses.
  MatrixF w = random_matrix(64, 96, 101);
  const TilePattern pattern =
      tw_pattern_from_scores(magnitude_scores(w), 0.5, 16);
  apply_pattern(pattern, w);
  PlannerOptions options;
  options.allow_int8 = true;
  ASSERT_EQ(rank_formats(w, &pattern, options).front().format, "tw-int8");

  PlannerCalibration measured;
  measured.int8_mac_discount = 4.0;
  measured.dense_gflops = 40.0;
  options.calibration = &measured;
  const auto ranked = rank_formats(w, &pattern, options);
  EXPECT_EQ(ranked.front().format, "tw");

  // The same calibration installed process-wide applies without the
  // per-call override.
  set_planner_calibration(measured);
  options.calibration = nullptr;
  EXPECT_EQ(rank_formats(w, &pattern, options).front().format, "tw");
  set_planner_calibration(PlannerCalibration{});  // restore defaults
  EXPECT_EQ(rank_formats(w, &pattern, options).front().format, "tw-int8");
}

TEST(Planner, PackWeightBuildsTheWinner) {
  MatrixF w = random_matrix(48, 64, 103);
  const TilePattern pattern =
      tw_pattern_from_scores(magnitude_scores(w), 0.8, 16);
  apply_pattern(pattern, w);
  PackOptions pack;
  pack.pattern = &pattern;
  const auto packed = pack_weight(w, pack);
  EXPECT_EQ(packed->format(), rank_formats(w, &pattern).front().format);
  const MatrixF a = random_matrix(4, 48, 107);
  EXPECT_LT(max_abs_diff(packed->matmul(ExecContext{}, a),
                         matmul_reference(a, packed->to_dense())),
            1e-4f);
}

// -------------------------------------------- NN stack packed inference

TEST(PackedInference, TwPrunedBertMatchesDenseMaskedReference) {
  // Acceptance: a TW-pruned bert_mini forward pass through Linear-held
  // packed weights matches the dense-masked reference within 1e-4.
  BertMiniConfig config;
  config.layers = 1;
  TokenTeacherDataset data(64, config.seq, config.classes, config.dim, 109);
  BertMini model(config, data.embedding());

  // Prune every prunable weight to 50% TW in place.
  std::vector<Param*> weights = model.prunable_weights();
  std::vector<TilePattern> patterns;
  for (Param* p : weights) {
    const TilePattern pattern =
        tw_pattern_from_scores(magnitude_scores(p->value), 0.5, 16);
    apply_pattern(pattern, p->value);
    patterns.push_back(pattern);
  }

  Rng rng(113);
  const TokenBatch batch = data.sample(8, rng);
  const MatrixF dense_logits = model.forward(batch);  // dense-masked ref

  model.pack_weights("tw", &patterns);
  const MatrixF packed_logits = model.forward(batch);
  EXPECT_LT(max_abs_diff(packed_logits, dense_logits), 1e-4f);

  // Every other fp32 format serves the same model.  ("tew" packed from
  // already-zeroed weights has an empty remainder — equivalent to "tw";
  // see PackOptions.scores — which is exactly why it must still match.)
  for (const std::string format : {"tew", "csr", "dense"}) {
    model.pack_weights(format, &patterns);
    const MatrixF logits = model.forward(batch);
    EXPECT_LT(max_abs_diff(logits, dense_logits), 1e-3f) << format;
  }

  model.clear_packed_weights();
  const MatrixF back = model.forward(batch);
  EXPECT_LT(max_abs_diff(back, dense_logits), 1e-6f);
}

TEST(PackedInference, NmtLstmRunsPacked) {
  NmtMiniConfig config;
  NmtMini model(config);

  std::vector<Param*> weights = model.prunable_weights();
  ASSERT_EQ(weights.size(), 5u);
  std::vector<TilePattern> patterns;
  for (Param* p : weights) {
    const TilePattern pattern =
        tw_pattern_from_scores(magnitude_scores(p->value), 0.4, 8);
    apply_pattern(pattern, p->value);
    patterns.push_back(pattern);
  }

  ReverseDataset data(config.vocab, config.seq, 127);
  Rng rng(131);
  const Seq2SeqBatch batch = data.sample(4, rng);
  const MatrixF dense_logits = model.forward(batch);

  model.pack_weights("tw", &patterns);
  const MatrixF packed_logits = model.forward(batch);
  EXPECT_LT(max_abs_diff(packed_logits, dense_logits), 1e-4f);
  model.clear_packed_weights();
}

TEST(PackedInference, EvaluateWithFormatRoundTrips) {
  auto task = make_bert_cls_task(/*pretrain_steps=*/20, 137);
  const double dense_metric = task->evaluate();
  // Dense packing changes nothing about the math.
  const double packed_metric = evaluate_with_format(*task, "dense");
  EXPECT_NEAR(packed_metric, dense_metric, 1e-9);
  // And the task is back on the dense path afterwards.
  EXPECT_NEAR(task->evaluate(), dense_metric, 1e-9);
}

TEST(PackedInference, ServesFromDeploymentArtifact) {
  // The deployment story end-to-end: pack → one artifact file → serve.
  // Serving from the artifact must reproduce serving from the in-memory
  // packed objects exactly (nothing is re-packed or re-quantised).
  auto task = make_bert_cls_task(/*pretrain_steps=*/20, 139);

  std::vector<TilePattern> patterns;
  for (Param* p : task->prunable()) {
    const TilePattern pattern =
        tw_pattern_from_scores(magnitude_scores(p->value), 0.5, 16);
    apply_pattern(pattern, p->value);
    patterns.push_back(pattern);
  }

  const std::string path = "/tmp/tilesparse_task_artifact_test.bin";
  for (const std::string format : {"tw", "tw-int8"}) {
    export_packed_weights(*task, format, &patterns, path);
    const double packed_metric = evaluate_with_format(*task, format, &patterns);
    const double artifact_metric = evaluate_from_artifact(*task, path);
    EXPECT_NEAR(artifact_metric, packed_metric, 1e-12) << format;
  }
  std::remove(path.c_str());

  // A task without a layer-level packed path refuses cleanly.
  auto nmt = make_nmt_task(/*pretrain_steps=*/1, 141);
  EXPECT_THROW(export_packed_weights(*nmt, "dense", nullptr, path),
               std::logic_error);
  EXPECT_THROW(evaluate_from_artifact(*nmt, path), std::logic_error);
}

// ------------------------------------------------------ micro-kernel core
//
// Every PackedWeight path now funnels into gemm/micro_kernel.hpp; this
// group pins each kernel variant (scalar fallback vs SIMD, fp32 vs
// int8) against a naive triple-loop reference at ragged shapes, and the
// masked path's alpha/beta plumbing at shapes that are not multiples of
// the register tile.

/// Restores the previous dispatch level on scope exit.
class ScopedSimdLevel {
 public:
  explicit ScopedSimdLevel(SimdLevel level) : saved_(active_simd_level()) {
    set_simd_level(level);
  }
  ~ScopedSimdLevel() { set_simd_level(saved_); }
  ScopedSimdLevel(const ScopedSimdLevel&) = delete;
  ScopedSimdLevel& operator=(const ScopedSimdLevel&) = delete;

 private:
  SimdLevel saved_;
};

std::vector<SimdLevel> testable_simd_levels() {
  std::vector<SimdLevel> levels = {SimdLevel::kScalar};
  if (detected_simd_level() != SimdLevel::kScalar)
    levels.push_back(detected_simd_level());
  return levels;
}

class MicroKernel : public ::testing::TestWithParam<SimdLevel> {};

TEST_P(MicroKernel, DenseGemmMatchesReferenceAtRaggedShapes) {
  ScopedSimdLevel scoped(GetParam());
  // M, K, N deliberately not multiples of the 6x16 tile (plus the
  // degenerate and exactly-divisible corners).
  const ConformanceCase shapes[] = {
      {1, 1, 1, 0, "unit"},         {3, 5, 7, 0, "tiny ragged"},
      {6, 16, 32, 0, "divisible"},  {7, 17, 33, 0, "one past the tile"},
      {13, 41, 19, 0, "ragged"},    {5, 300, 11, 0, "deep K, narrow N"},
      {64, 64, 64, 0, "square"},
  };
  for (const auto& shape : shapes) {
    const MatrixF a = random_matrix(shape.m, shape.k, 7 + shape.m);
    const MatrixF b = random_matrix(shape.k, shape.n, 11 + shape.n);
    const MatrixF ref = matmul_reference(a, b);
    const MatrixF c = matmul(a, b);
    EXPECT_LT(max_abs_diff(c, ref), 1e-4f)
        << shape.label << " under " << simd_level_name(GetParam());
  }
}

TEST_P(MicroKernel, RawF32KernelMatchesNaivePanels) {
  ScopedSimdLevel scoped(GetParam());
  Rng rng(41);
  for (std::size_t rows : {std::size_t{1}, std::size_t{4}, kMr}) {
    for (std::size_t cols : {std::size_t{1}, std::size_t{9}, kNr}) {
      for (std::size_t kc : {std::size_t{1}, std::size_t{5}, std::size_t{37}}) {
        MatrixF a(rows, kc), b(kc, cols);
        fill_normal(a, rng);
        fill_normal(b, rng);
        std::vector<float> a_panel(kc * kMr), b_panel(kc * kNr);
        pack_a_panel_f32(a.data(), kc, rows, kc, /*alpha=*/1.0f,
                         /*fp16_inputs=*/false, a_panel.data());
        pack_b_panel_f32(b.data(), cols, kc, cols, b_panel.data());

        MatrixF c = random_matrix(rows, cols, 5 * kc + cols);
        MatrixF ref = c;
        micro_kernel_f32(kc, a_panel.data(), b_panel.data(), c.data(), cols,
                         rows, cols);
        for (std::size_t r = 0; r < rows; ++r)
          for (std::size_t j = 0; j < cols; ++j)
            for (std::size_t t = 0; t < kc; ++t) ref(r, j) += a(r, t) * b(t, j);
        EXPECT_LT(max_abs_diff(c, ref), 1e-4f)
            << rows << "x" << cols << "x" << kc << " under "
            << simd_level_name(GetParam());
      }
    }
  }
}

TEST_P(MicroKernel, Int8KernelIsExactWithPowerOfTwoScale) {
  ScopedSimdLevel scoped(GetParam());
  Rng rng(43);
  // Power-of-two dequant scale: the int32 accumulation is exact and the
  // float scaling is too, so scalar, SIMD and the naive loop must agree
  // bit-for-bit.
  const float scale = 0.03125f;
  for (std::size_t rows : {std::size_t{1}, std::size_t{3}, kMr}) {
    for (std::size_t cols : {std::size_t{1}, std::size_t{7}, kNr}) {
      for (std::size_t kc : {std::size_t{1}, std::size_t{2}, std::size_t{9},
                             std::size_t{64}}) {
        std::vector<std::int8_t> a(rows * kc), b(kc * cols);
        for (auto& v : a)
          v = static_cast<std::int8_t>(rng.uniform(-127.0f, 127.0f));
        for (auto& v : b)
          v = static_cast<std::int8_t>(rng.uniform(-127.0f, 127.0f));
        const std::size_t kc_even = round_up_pair(kc);
        std::vector<std::int8_t> a_panel(kc_even * kMr), b_panel(kc_even * kNr);
        pack_a_panel_i8(a.data(), kc, rows, kc, a_panel.data());
        pack_b_panel_i8(b.data(), cols, kc, cols, b_panel.data());

        MatrixF c(rows, cols);
        micro_kernel_i8(kc, a_panel.data(), b_panel.data(), scale, c.data(),
                        cols, rows, cols);
        for (std::size_t r = 0; r < rows; ++r) {
          for (std::size_t j = 0; j < cols; ++j) {
            std::int32_t acc = 0;
            for (std::size_t t = 0; t < kc; ++t)
              acc += static_cast<std::int32_t>(a[r * kc + t]) *
                     static_cast<std::int32_t>(b[t * cols + j]);
            EXPECT_EQ(c(r, j), scale * static_cast<float>(acc))
                << rows << "x" << cols << "x" << kc << " under "
                << simd_level_name(GetParam());
          }
        }
      }
    }
  }
}

TEST_P(MicroKernel, MaskedPathAlphaBetaEdgeCases) {
  ScopedSimdLevel scoped(GetParam());
  // Ragged shape: none of M, K, N are multiples of the register tile.
  const std::size_t m = 13, k = 50, n = 70;
  const MatrixF w = random_matrix(k, n, 61);
  const MatrixF a = random_matrix(m, k, 67);
  const auto packed = pack_for_test("tw", w, /*g=*/16);
  const MatrixF ab = matmul_reference(a, packed->to_dense());

  const float combos[][2] = {
      {0.0f, 0.0f}, {0.0f, 2.0f}, {1.0f, 0.0f},
      {1.0f, 1.0f}, {2.0f, 0.5f}, {-0.5f, -1.0f},
  };
  for (const auto& combo : combos) {
    ExecContext ctx;
    ctx.alpha = combo[0];
    ctx.beta = combo[1];
    MatrixF c = random_matrix(m, n, 71);
    const MatrixF c0 = c;
    packed->matmul(ctx, a, c);
    for (std::size_t i = 0; i < c.size(); ++i) {
      EXPECT_NEAR(c.data()[i],
                  combo[0] * ab.data()[i] + combo[1] * c0.data()[i], 1e-3f)
          << "alpha=" << combo[0] << " beta=" << combo[1] << " under "
          << simd_level_name(GetParam());
    }
  }
}

TEST(MicroKernel, ScalarAndSimdPathsAgree) {
  const MatrixF a = random_matrix(37, 129, 73);
  const MatrixF b = random_matrix(129, 83, 79);
  MatrixF c_scalar, c_simd;
  {
    ScopedSimdLevel scoped(SimdLevel::kScalar);
    c_scalar = matmul(a, b);
  }
  {
    ScopedSimdLevel scoped(detected_simd_level());
    c_simd = matmul(a, b);
  }
  // Identical math modulo FMA contraction differences.
  EXPECT_LT(max_abs_diff(c_scalar, c_simd), 1e-4f);
}

INSTANTIATE_TEST_SUITE_P(Dispatch, MicroKernel,
                         ::testing::ValuesIn(testable_simd_levels()),
                         [](const auto& info) {
                           return std::string(simd_level_name(info.param));
                         });

}  // namespace
}  // namespace tilesparse
