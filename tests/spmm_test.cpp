#include <gtest/gtest.h>

#include "sparse/spmm.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace tilesparse {
namespace {

MatrixF random_sparse(std::size_t rows, std::size_t cols, double sparsity,
                      std::uint64_t seed) {
  Rng rng(seed);
  MatrixF m(rows, cols);
  for (float& v : m.flat())
    v = (rng.uniform() < sparsity) ? 0.0f : rng.normal();
  return m;
}

TEST(Spmm, CsrTimesDenseMatchesReference) {
  Rng rng(1);
  const MatrixF a_dense = random_sparse(14, 20, 0.7, 2);
  MatrixF b(20, 9);
  fill_normal(b, rng);
  const MatrixF c = csr_spmm(csr_from_dense(a_dense), b);
  EXPECT_LT(max_abs_diff(c, matmul_reference(a_dense, b)), 1e-4f);
}

TEST(Spmm, DenseTimesCsrMatchesReference) {
  Rng rng(3);
  MatrixF a(8, 25);
  fill_normal(a, rng);
  const MatrixF w = random_sparse(25, 11, 0.8, 4);
  const MatrixF c = dense_times_csr(a, csr_from_dense(w));
  EXPECT_LT(max_abs_diff(c, matmul_reference(a, w)), 1e-4f);
}

TEST(Spmm, EmptySparseGivesZero) {
  MatrixF a(5, 5);
  a.fill(1.0f);
  const MatrixF w(5, 5);  // all zeros
  const MatrixF c = dense_times_csr(a, csr_from_dense(w));
  for (float v : c.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(Spmm, FullySparseAgreesWithFullyDense) {
  Rng rng(5);
  MatrixF a(6, 6), w(6, 6);
  fill_normal(a, rng);
  fill_normal(w, rng);
  const MatrixF c = dense_times_csr(a, csr_from_dense(w));
  EXPECT_LT(max_abs_diff(c, matmul_reference(a, w)), 1e-4f);
}

}  // namespace
}  // namespace tilesparse
