#include <gtest/gtest.h>

#include "sparse/spmm.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace tilesparse {
namespace {

MatrixF random_sparse(std::size_t rows, std::size_t cols, double sparsity,
                      std::uint64_t seed) {
  Rng rng(seed);
  MatrixF m(rows, cols);
  for (float& v : m.flat())
    v = (rng.uniform() < sparsity) ? 0.0f : rng.normal();
  return m;
}

TEST(Spmm, CsrTimesDenseMatchesReference) {
  Rng rng(1);
  const MatrixF a_dense = random_sparse(14, 20, 0.7, 2);
  MatrixF b(20, 9);
  fill_normal(b, rng);
  const MatrixF c = csr_spmm(csr_from_dense(a_dense), b);
  EXPECT_LT(max_abs_diff(c, matmul_reference(a_dense, b)), 1e-4f);
}

TEST(Spmm, DenseTimesCsrMatchesReference) {
  Rng rng(3);
  MatrixF a(8, 25);
  fill_normal(a, rng);
  const MatrixF w = random_sparse(25, 11, 0.8, 4);
  const MatrixF c = dense_times_csr(a, csr_from_dense(w));
  EXPECT_LT(max_abs_diff(c, matmul_reference(a, w)), 1e-4f);
}

TEST(Spmm, EmptySparseGivesZero) {
  MatrixF a(5, 5);
  a.fill(1.0f);
  const MatrixF w(5, 5);  // all zeros
  const MatrixF c = dense_times_csr(a, csr_from_dense(w));
  for (float v : c.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(Spmm, FullySparseAgreesWithFullyDense) {
  Rng rng(5);
  MatrixF a(6, 6), w(6, 6);
  fill_normal(a, rng);
  fill_normal(w, rng);
  const MatrixF c = dense_times_csr(a, csr_from_dense(w));
  EXPECT_LT(max_abs_diff(c, matmul_reference(a, w)), 1e-4f);
}

// ------------------------------------------------------- panel SpMM
//
// The strip-panel path must agree with the naive scalar loop at every
// sparsity extreme; the two accumulate in different associations, so
// the comparison is tolerance-based (the shard bit-identity guarantee
// is panel-vs-panel and lives in exec_graph_test).

void expect_panel_matches_naive(const MatrixF& a, const MatrixF& w) {
  const Csr csr = csr_from_dense(w);
  MatrixF naive(a.rows(), w.cols());
  dense_times_csr_accumulate(a, csr, naive);
  MatrixF panel(a.rows(), w.cols());
  csr_panels_spmm_accumulate(a, build_csr_panels(csr), panel);
  EXPECT_LT(max_abs_diff(panel, naive), 1e-4f);
  // A narrow strip width exercises multi-strip fragments and ragged
  // final strips on the same data.
  MatrixF narrow(a.rows(), w.cols());
  csr_panels_spmm_accumulate(a, build_csr_panels(csr, 16), narrow);
  EXPECT_LT(max_abs_diff(narrow, naive), 1e-4f);
}

TEST(SpmmPanels, FullyDenseMatrixMatchesNaive) {
  Rng rng(11);
  MatrixF a(21, 40), w(40, 53);  // ragged M (crosses the 16-row block)
  fill_normal(a, rng);
  fill_normal(w, rng);
  expect_panel_matches_naive(a, w);
}

TEST(SpmmPanels, ExtremeSparsityMatchesNaive) {
  Rng rng(13);
  MatrixF a(18, 64);
  fill_normal(a, rng);
  const MatrixF w = random_sparse(64, 70, 0.99, 14);
  expect_panel_matches_naive(a, w);
}

TEST(SpmmPanels, EmptyRowsAreSkipped) {
  Rng rng(17);
  MatrixF a(9, 32);
  fill_normal(a, rng);
  MatrixF w = random_sparse(32, 48, 0.5, 18);
  // Zero out most weight rows entirely — the compacted per-strip row
  // lists must skip them without touching the fragment.
  for (std::size_t r = 0; r < w.rows(); ++r) {
    if (r % 4 == 0) continue;
    for (std::size_t c = 0; c < w.cols(); ++c) w(r, c) = 0.0f;
  }
  expect_panel_matches_naive(a, w);
}

TEST(SpmmPanels, SingleNonzeroPerRowMatchesNaive) {
  Rng rng(19);
  MatrixF a(5, 24);
  fill_normal(a, rng);
  MatrixF w(24, 31);
  for (std::size_t r = 0; r < w.rows(); ++r)
    w(r, (r * 7) % w.cols()) = rng.normal();
  expect_panel_matches_naive(a, w);
}

TEST(SpmmPanels, AllZeroWeightGivesZero) {
  MatrixF a(7, 12);
  a.fill(1.0f);
  const MatrixF w(12, 20);
  MatrixF c(7, 20);
  csr_panels_spmm_accumulate(a, build_csr_panels(csr_from_dense(w)), c);
  for (float v : c.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(SpmmPanels, AccumulatesIntoExistingC) {
  Rng rng(23);
  MatrixF a(4, 10);
  fill_normal(a, rng);
  const MatrixF w = random_sparse(10, 9, 0.6, 24);
  MatrixF base(4, 9);
  fill_normal(base, rng);
  MatrixF expected = base;
  dense_times_csr_accumulate(a, csr_from_dense(w), expected);
  MatrixF c = base;
  csr_panels_spmm_accumulate(a, build_csr_panels(csr_from_dense(w)), c);
  EXPECT_LT(max_abs_diff(c, expected), 1e-4f);
}

}  // namespace
}  // namespace tilesparse
