#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "gemm/fused_ops.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace tilesparse {
namespace {

MatrixF random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  MatrixF m(rows, cols);
  fill_normal(m, rng);
  return m;
}

std::vector<float> random_vec(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<float> v(n);
  for (float& x : v) x = rng.normal();
  return v;
}

TEST(FusedOps, AddBiasAddsPerColumn) {
  MatrixF x(3, 4);
  const auto bias = random_vec(4, 1);
  add_bias(x, bias);
  for (std::size_t r = 0; r < 3; ++r)
    for (std::size_t c = 0; c < 4; ++c) EXPECT_FLOAT_EQ(x(r, c), bias[c]);
}

TEST(FusedOps, LayerNormRowsHaveZeroMeanUnitVar) {
  MatrixF x = random_matrix(8, 64, 2);
  std::vector<float> gamma(64, 1.0f), beta(64, 0.0f);
  layer_norm(x, gamma, beta);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    double mean = 0.0, var = 0.0;
    for (std::size_t c = 0; c < x.cols(); ++c) mean += x(r, c);
    mean /= x.cols();
    for (std::size_t c = 0; c < x.cols(); ++c) {
      const double d = x(r, c) - mean;
      var += d * d;
    }
    var /= x.cols();
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(FusedOps, FusedBiasLayerNormMatchesSeparate) {
  MatrixF a = random_matrix(6, 32, 3);
  MatrixF b = a;
  const auto bias = random_vec(32, 4);
  const auto gamma = random_vec(32, 5);
  const auto beta = random_vec(32, 6);
  add_bias(a, bias);
  layer_norm(a, gamma, beta);
  fused_bias_layer_norm(b, bias, gamma, beta);
  EXPECT_LT(max_abs_diff(a, b), 1e-5f);
}

TEST(FusedOps, FusedBiasGeluMatchesSeparate) {
  MatrixF a = random_matrix(5, 16, 7);
  MatrixF b = a;
  const auto bias = random_vec(16, 8);
  add_bias(a, bias);
  gelu(a);
  fused_bias_gelu(b, bias);
  EXPECT_LT(max_abs_diff(a, b), 1e-5f);
}

TEST(FusedOps, GeluKnownValues) {
  MatrixF x(1, 3);
  x(0, 0) = 0.0f;
  x(0, 1) = 100.0f;   // saturates to identity
  x(0, 2) = -100.0f;  // saturates to zero
  gelu(x);
  EXPECT_FLOAT_EQ(x(0, 0), 0.0f);
  EXPECT_NEAR(x(0, 1), 100.0f, 1e-3f);
  EXPECT_NEAR(x(0, 2), 0.0f, 1e-3f);
}

TEST(FusedOps, ReluClampsNegatives) {
  MatrixF x(1, 2);
  x(0, 0) = -1.0f;
  x(0, 1) = 2.0f;
  relu(x);
  EXPECT_EQ(x(0, 0), 0.0f);
  EXPECT_EQ(x(0, 1), 2.0f);
}

TEST(FusedOps, SoftmaxRowsSumToOne) {
  MatrixF x = random_matrix(7, 13, 9);
  softmax_rows(x);
  for (std::size_t r = 0; r < x.rows(); ++r) {
    double sum = 0.0;
    for (std::size_t c = 0; c < x.cols(); ++c) {
      EXPECT_GT(x(r, c), 0.0f);
      sum += x(r, c);
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST(FusedOps, SoftmaxNumericallyStableForLargeInputs) {
  MatrixF x(1, 3);
  x(0, 0) = 1000.0f;
  x(0, 1) = 1000.0f;
  x(0, 2) = -1000.0f;
  softmax_rows(x);
  EXPECT_NEAR(x(0, 0), 0.5f, 1e-5f);
  EXPECT_FALSE(std::isnan(x(0, 2)));
}

}  // namespace
}  // namespace tilesparse
