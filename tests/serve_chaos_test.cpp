// Chaos suite for the serving runtime: many iterations of mixed
// traffic — healthy GEMM graphs, requests that always throw, slow
// graphs racing tight deadlines, artifact loads — under deterministic
// seeded fault injection (when the build carries the points;
// -DTILESPARSE_ENABLE_FAULTS=ON).  Every iteration asserts the three
// promises the runtime makes:
//
//   1. Conservation: every submitted request reaches exactly one
//      terminal status (stats().conserved() after shutdown).
//   2. No deadlock: shutdown(kDrain) returns (the ctest TIMEOUT is the
//      backstop).
//   3. Bit-identity: every OK response for a healthy GEMM request
//      equals the fault-free serial reference exactly, injected faults
//      and degraded retries notwithstanding.
//
// Without TILESPARSE_ENABLE_FAULTS the suite still runs fault-free and
// checks the same invariants under concurrency alone.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "exec/backend_registry.hpp"
#include "exec/batch_entry.hpp"
#include "exec/exec_context.hpp"
#include "exec/graph.hpp"
#include "io/serialize.hpp"
#include "prune/importance.hpp"
#include "prune/tw_pruner.hpp"
#include "serve/serving_runtime.hpp"
#include "tensor/ops.hpp"
#include "util/fault_injection.hpp"
#include "util/rng.hpp"

namespace tilesparse::serve {
namespace {

using namespace std::chrono_literals;

MatrixF random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  MatrixF m(rows, cols);
  fill_normal(m, rng);
  return m;
}

bool bit_identical(const MatrixF& a, const MatrixF& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return a.size() == 0 ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

std::unique_ptr<PackedWeight> pack_sparse(const MatrixF& w, std::size_t g) {
  const MatrixF scores = magnitude_scores(w);
  const TilePattern pattern = tw_pattern_from_scores(scores, 0.6, g);
  PackOptions options;
  options.pattern = &pattern;
  options.scores = &scores;
  return make_packed("tw", w, options);
}

// Shared fixture state: weights, inputs, the fault-free serial
// reference results, and a small on-disk artifact for the io requests.
class ServeChaosTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    dense_w_ = new MatrixF(random_matrix(48, 96, 101));
    sparse_w_ = new MatrixF(random_matrix(48, 96, 102));
    input_ = new MatrixF(random_matrix(6, 48, 103));
    dense_packed_ = pack_for("dense");
    sparse_packed_ = pack_sparse(*sparse_w_, 16).release();
    // References computed here, before any test arms fault injection.
    dense_ref_ = new MatrixF(dense_packed_->matmul(ExecContext{}, *input_));
    sparse_ref_ = new MatrixF(sparse_packed_->matmul(ExecContext{}, *input_));
    artifact_path_ = new std::string(
        (std::filesystem::temp_directory_path() / "serve_chaos_w.tspw")
            .string());
    save_packed_weight(*artifact_path_, *dense_packed_);
  }

  static void TearDownTestSuite() {
    std::remove(artifact_path_->c_str());
    delete dense_w_;
    delete sparse_w_;
    delete input_;
    delete dense_packed_;
    delete sparse_packed_;
    delete dense_ref_;
    delete sparse_ref_;
    delete artifact_path_;
  }

  static PackedWeight* pack_for(const std::string& format) {
    return make_packed(format, *dense_w_).release();
  }

  static MatrixF* dense_w_;
  static MatrixF* sparse_w_;
  static MatrixF* input_;
  static PackedWeight* dense_packed_;
  static PackedWeight* sparse_packed_;
  static MatrixF* dense_ref_;
  static MatrixF* sparse_ref_;
  static std::string* artifact_path_;
};

MatrixF* ServeChaosTest::dense_w_ = nullptr;
MatrixF* ServeChaosTest::sparse_w_ = nullptr;
MatrixF* ServeChaosTest::input_ = nullptr;
PackedWeight* ServeChaosTest::dense_packed_ = nullptr;
PackedWeight* ServeChaosTest::sparse_packed_ = nullptr;
MatrixF* ServeChaosTest::dense_ref_ = nullptr;
MatrixF* ServeChaosTest::sparse_ref_ = nullptr;
std::string* ServeChaosTest::artifact_path_ = nullptr;

// Request factories.  Each builds its graph locally inside the work
// callable, so concurrent workers never share mutable graph state.

Request gemm_request(const PackedWeight* packed, const MatrixF* input,
                     Priority priority, std::string tag) {
  Request request;
  request.priority = priority;
  request.tag = std::move(tag);
  request.work = [packed, input](WorkerContext& ctx) {
    ExecGraph g;
    const auto in = g.add_slot("in");
    const auto out = g.add_slot("out");
    g.add_gemm("gemm", packed, in, out);
    g.slot(in) = *input;
    ctx.scheduler.run(g);
    return std::move(g.slot(out));
  };
  return request;
}

Request poison_request(std::string tag) {
  Request request;
  request.priority = Priority::kBatch;
  request.tag = std::move(tag);
  request.work = [](WorkerContext& ctx) -> MatrixF {
    ExecGraph g;
    const auto s = g.add_slot("s");
    g.add_host("boom", {}, {s}, [](ExecGraph&) {
      throw std::runtime_error("poisoned node");
    });
    ctx.scheduler.run(g);
    return MatrixF(1, 1);
  };
  return request;
}

Request slow_request(std::string tag) {
  Request request;
  request.priority = Priority::kNormal;
  request.tag = std::move(tag);
  request.deadline = Clock::now() + 2ms;
  request.work = [](WorkerContext& ctx) {
    ExecGraph g;
    ExecGraph::SlotId prev = g.add_slot("s0");
    g.add_host("n0", {}, {prev},
               [](ExecGraph&) { std::this_thread::sleep_for(500us); });
    for (int i = 1; i < 8; ++i) {
      const auto next = g.add_slot("s" + std::to_string(i));
      g.add_host("n" + std::to_string(i), {prev}, {next},
                 [](ExecGraph&) { std::this_thread::sleep_for(500us); });
      prev = next;
    }
    ctx.scheduler.run(g);
    MatrixF done(1, 1);
    done(0, 0) = 1.0f;
    return done;
  };
  return request;
}

Request artifact_request(const std::string* path, const MatrixF* input,
                         std::string tag) {
  Request request;
  request.priority = Priority::kNormal;
  request.tag = std::move(tag);
  request.work = [path, input](WorkerContext&) {
    // Exercises the kIoRead fault site; a corrupt/unreadable artifact
    // surfaces as a FAILED request, never a dead worker.
    const auto packed = load_packed_weight(*path);
    return packed->matmul(ExecContext{}, *input);
  };
  return request;
}

TEST_F(ServeChaosTest, HundredIterationsConserveAndStayBitIdentical) {
  constexpr int kIterations = 100;
  std::uint64_t total_ok = 0, total_failed = 0, total_timeout = 0,
                total_shed = 0;

  for (int iter = 0; iter < kIterations; ++iter) {
    FaultConfig config;
    config.seed = 1000 + static_cast<std::uint64_t>(iter);
    config.with_rate(FaultSite::kSchedulerDispatch, 0.05)
        .with_rate(FaultSite::kKernelEntry, 0.02)
        .with_rate(FaultSite::kIoRead, 0.10);
    ScopedFaults faults(config);

    ServingOptions options;
    options.workers = 3;
    options.streams = 2;
    // Big enough to admit the whole burst: the poison/slow requests must
    // actually execute to exercise FAILED/TIMEOUT (shedding under
    // saturation has its own deterministic coverage in serve_test).
    options.queue_capacity = 16;
    options.max_attempts = 2;
    options.retry_backoff = 50us;
    ServingRuntime runtime(options);

    struct Expected {
      RequestHandle handle;
      const MatrixF* reference;  ///< non-null: OK must be bit-identical
    };
    std::vector<Expected> submitted;
    for (int i = 0; i < 12; ++i) {
      const std::string tag = std::to_string(iter) + "/" + std::to_string(i);
      switch (i % 6) {
        case 0:
        case 1:
          submitted.push_back(
              {runtime.submit(gemm_request(dense_packed_, input_,
                                           Priority::kInteractive,
                                           "dense-" + tag)),
               dense_ref_});
          break;
        case 2:
          submitted.push_back(
              {runtime.submit(gemm_request(sparse_packed_, input_,
                                           Priority::kNormal, "tw-" + tag)),
               sparse_ref_});
          break;
        case 3:
          submitted.push_back(
              {runtime.submit(poison_request("poison-" + tag)), nullptr});
          break;
        case 4:
          submitted.push_back(
              {runtime.submit(slow_request("slow-" + tag)), nullptr});
          break;
        case 5:
          submitted.push_back(
              {runtime.submit(artifact_request(artifact_path_, input_,
                                               "artifact-" + tag)),
               dense_ref_});
          break;
      }
    }

    // No-deadlock promise: this must return (ctest TIMEOUT backstops).
    runtime.shutdown(ServingRuntime::Shutdown::kDrain);

    for (const Expected& entry : submitted) {
      ASSERT_TRUE(entry.handle->done());
      const Response& response = entry.handle->response();
      ASSERT_NE(response.status, RequestStatus::kPending);
      switch (response.status) {
        case RequestStatus::kOk:
          ++total_ok;
          if (entry.reference != nullptr) {
            // Bit-identity even when retries ran degraded or faults
            // fired around this request.
            ASSERT_TRUE(bit_identical(response.result, *entry.reference))
                << "tag " << response.tag << " attempts " << response.attempts
                << " degraded " << response.degraded;
          }
          break;
        case RequestStatus::kFailed:
          ++total_failed;
          EXPECT_FALSE(response.error.empty());
          break;
        case RequestStatus::kTimeout:
          ++total_timeout;
          break;
        case RequestStatus::kRejected:
          ++total_shed;
          break;
        case RequestStatus::kPending:
          break;
      }
    }

    const auto stats = runtime.stats();
    ASSERT_TRUE(stats.conserved())
        << "iteration " << iter << ": submitted " << stats.submitted
        << " terminal " << stats.terminal() << " admitted " << stats.admitted;
    ASSERT_EQ(stats.submitted, 12u);
  }

  // Poison requests exist every iteration, so failures are guaranteed;
  // OK traffic must also have survived the chaos.
  EXPECT_GE(total_failed, static_cast<std::uint64_t>(kIterations));
  EXPECT_GT(total_ok, 0u);
  if (faults_compiled_in()) {
    // The injection points must actually have fired under these rates
    // (deterministic for the fixed seeds above).
    EXPECT_GT(fault_counts().total_fired(), 0u);
  }
  (void)total_timeout;
  (void)total_shed;
}

// The same chaos mix with cross-request batching ENABLED and every
// request billed to a tenant: batchable dense/tw traffic coalesces into
// wide-M runs while poison and deadline-racing requests ride alongside.
// On top of the three global promises, conservation must hold PER
// TENANT — one tenant's faults never leak statuses into another's
// ledger — and every OK batchable response must still be bit-identical
// to the fault-free solo reference, whether it was served batched, solo
// after a bypass, or re-run on the fallback after a batch fault.
TEST_F(ServeChaosTest, BatchedHundredIterationsConservePerTenant) {
  constexpr int kIterations = 100;
  std::uint64_t total_ok = 0, total_failed = 0, total_batched_members = 0;

  for (int iter = 0; iter < kIterations; ++iter) {
    FaultConfig config;
    config.seed = 5000 + static_cast<std::uint64_t>(iter);
    config.with_rate(FaultSite::kSchedulerDispatch, 0.05)
        .with_rate(FaultSite::kKernelEntry, 0.02);
    ScopedFaults faults(config);

    ServingOptions options;
    options.workers = 3;
    options.streams = 2;
    options.queue_capacity = 16;
    options.max_attempts = 2;
    options.retry_backoff = 50us;
    options.batch.enabled = true;
    options.batch.max_linger = 500us;
    options.batch.max_batch_m = 64;
    ServingRuntime runtime(options);
    runtime.register_batch_entry(make_gemm_entry("dense", dense_packed_));
    runtime.register_batch_entry(make_gemm_entry("tw", sparse_packed_));

    struct Expected {
      RequestHandle handle;
      const MatrixF* reference;  ///< non-null: OK must be bit-identical
    };
    std::vector<Expected> submitted;
    auto batchable = [&](const char* entry, std::string tenant,
                         Clock::time_point deadline) {
      Request request;
      request.entry = entry;
      request.input = *input_;
      request.tenant_id = std::move(tenant);
      request.deadline = deadline;
      request.tag = entry;
      return request;
    };
    const auto never = Clock::time_point::max();
    for (int i = 0; i < 12; ++i) {
      const std::string tenant = "tenant-" + std::to_string(i % 3);
      switch (i % 6) {
        case 0:
        case 1:
          submitted.push_back(
              {runtime.submit(batchable("dense", tenant, never)), dense_ref_});
          break;
        case 2:
          submitted.push_back(
              {runtime.submit(batchable("tw", tenant, never)), sparse_ref_});
          break;
        case 3: {
          Request poison = poison_request("poison");
          poison.tenant_id = tenant;
          submitted.push_back({runtime.submit(std::move(poison)), nullptr});
          break;
        }
        case 4: {
          Request slow = slow_request("slow");
          slow.tenant_id = tenant;
          submitted.push_back({runtime.submit(std::move(slow)), nullptr});
          break;
        }
        case 5:
          // Deadline racing the linger window: exercises the bypass
          // path and in-batch expiry, whichever the race produces.
          submitted.push_back(
              {runtime.submit(batchable("dense", tenant,
                                        Clock::now() + 300us)),
               dense_ref_});
          break;
      }
    }

    runtime.shutdown(ServingRuntime::Shutdown::kDrain);

    for (const Expected& entry : submitted) {
      ASSERT_TRUE(entry.handle->done());
      const Response& response = entry.handle->response();
      switch (response.status) {
        case RequestStatus::kOk:
          ++total_ok;
          if (entry.reference != nullptr) {
            ASSERT_TRUE(bit_identical(response.result, *entry.reference))
                << "tag " << response.tag << " batched " << response.batched
                << " attempts " << response.attempts << " degraded "
                << response.degraded;
          }
          break;
        case RequestStatus::kFailed:
          ++total_failed;
          break;
        default:
          break;
      }
    }

    const auto stats = runtime.stats();
    ASSERT_TRUE(stats.conserved())
        << "iteration " << iter << ": submitted " << stats.submitted
        << " terminal " << stats.terminal();
    ASSERT_EQ(stats.submitted, 12u);
    std::uint64_t tenant_submitted = 0;
    for (const auto& [tenant, per_tenant] : runtime.tenant_stats()) {
      ASSERT_TRUE(per_tenant.conserved())
          << "iteration " << iter << " tenant " << tenant << ": submitted "
          << per_tenant.submitted << " terminal " << per_tenant.terminal()
          << " admitted " << per_tenant.admitted;
      tenant_submitted += per_tenant.submitted;
    }
    // The tenant ledgers partition the global one exactly.
    ASSERT_EQ(tenant_submitted, stats.submitted);
    total_batched_members += runtime.batch_stats().batched_members;
  }

  EXPECT_GE(total_failed, static_cast<std::uint64_t>(kIterations));
  EXPECT_GT(total_ok, 0u);
  // Batching must actually have happened across the run, not just
  // degraded to solo everywhere.
  EXPECT_GT(total_batched_members, 0u);
}

TEST_F(ServeChaosTest, InjectedIoFaultSurfacesAsRequestError) {
  if (!faults_compiled_in()) GTEST_SKIP() << "faults not compiled in";
  FaultConfig config;
  config.seed = 7;
  config.with_rate(FaultSite::kIoRead, 1.0);  // every read throws
  ScopedFaults faults(config);

  ServingOptions options;
  options.workers = 1;
  options.max_attempts = 2;
  options.retry_backoff = 50us;
  ServingRuntime runtime(options);
  auto handle =
      runtime.submit(artifact_request(artifact_path_, input_, "io-fault"));
  const Response& response = handle->wait();
  EXPECT_EQ(response.status, RequestStatus::kFailed);
  EXPECT_NE(response.error.find("io.read"), std::string::npos);
  EXPECT_EQ(response.attempts, 2u);  // retried, then exhausted
  runtime.shutdown();
  EXPECT_TRUE(runtime.stats().conserved());
}

TEST_F(ServeChaosTest, TruncatedArtifactFailsRequestNotRuntime) {
  // A genuinely corrupt artifact (no fault injection involved): copy
  // the container and cut it short, then serve from the stump.
  const std::string corrupt_path =
      (std::filesystem::temp_directory_path() / "serve_chaos_corrupt.tspw")
          .string();
  {
    std::ifstream in(*artifact_path_, std::ios::binary);
    ASSERT_TRUE(in.good());
    std::vector<char> bytes((std::istreambuf_iterator<char>(in)),
                            std::istreambuf_iterator<char>());
    ASSERT_GT(bytes.size(), 16u);
    std::ofstream out(corrupt_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size() / 2));
  }

  ServingOptions options;
  options.workers = 1;
  options.retry_backoff = 50us;
  ServingRuntime runtime(options);
  auto bad =
      runtime.submit(artifact_request(&corrupt_path, input_, "corrupt"));
  EXPECT_EQ(bad->wait().status, RequestStatus::kFailed);
  // The worker that absorbed the load failure still serves real work.
  auto good = runtime.submit(
      gemm_request(dense_packed_, input_, Priority::kNormal, "after-corrupt"));
  const Response& response = good->wait();
  ASSERT_EQ(response.status, RequestStatus::kOk) << response.error;
  EXPECT_TRUE(bit_identical(response.result, *dense_ref_));
  runtime.shutdown();
  EXPECT_TRUE(runtime.stats().conserved());
  std::remove(corrupt_path.c_str());
}

}  // namespace
}  // namespace tilesparse::serve
