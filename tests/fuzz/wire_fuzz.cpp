// Fuzz harness for the deployment wire formats (io/serialize): the
// single-weight TSPW container (read_packed_weight) and the model-level
// TSMW artifact (read_model_weights), through BOTH load paths — the
// stream readers and the zero-copy MappedArtifact parser (the input is
// replayed from a 64-byte-aligned copy, exactly the base alignment an
// mmap'd file gets).  These parsers consume untrusted bytes at serving
// startup, so the contract under fuzzing is strict: any input either
// parses or throws std::exception — no crash, no sanitizer report, no
// misaligned span handed to a kernel, no unbounded allocation (sizes
// are validated against the image/stream length before allocation).
//
// Built two ways (CMakeLists TILESPARSE_ENABLE_FUZZER):
//  * libFuzzer (clang): LLVMFuzzerTestOneInput only; link with
//    -fsanitize=fuzzer,address,undefined.
//  * standalone (any compiler): a main() that replays corpus files —
//      wire_fuzz --write-seeds <dir>   emit valid seed inputs
//      wire_fuzz <file|dir>...         replay inputs (dirs recurse one level)
//    so the seeded-corpus smoke runs even without clang.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <exception>
#include <memory>
#include <sstream>
#include <string>

#include "exec/backend_registry.hpp"
#include "io/mmap_file.hpp"
#include "io/serialize.hpp"
#include "tensor/matrix.hpp"
#include "util/rng.hpp"

namespace {

void fuzz_one(const std::uint8_t* data, std::size_t size) {
  const std::string bytes(reinterpret_cast<const char*>(data), size);
  {
    std::istringstream in(bytes, std::ios::binary);
    try {
      (void)tilesparse::read_packed_weight(in);
    } catch (const std::exception&) {
      // Malformed input rejected — the expected failure mode.
    }
  }
  {
    std::istringstream in(bytes, std::ios::binary);
    try {
      (void)tilesparse::read_model_weights(in);
    } catch (const std::exception&) {
    }
  }

  // The zero-copy path: same bytes at the base alignment an mmap'd file
  // gets.  The image is shared so borrowed weights keep it alive past
  // the cursor (their to_dense() still reads it below).
  const std::shared_ptr<std::byte> image(
      static_cast<std::byte*>(
          ::operator new(size > 0 ? size : 1, std::align_val_t{64})),
      [](std::byte* p) { ::operator delete(p, std::align_val_t{64}); });
  if (size > 0) std::memcpy(image.get(), data, size);
  {
    tilesparse::MappedArtifact in(image.get(), size, image);
    try {
      auto weight = tilesparse::load_packed_weight_mapped(in);
      if (weight) (void)weight->to_dense();
    } catch (const std::exception&) {
    }
  }
  {
    tilesparse::MappedArtifact in(image.get(), size, image);
    try {
      const auto model = tilesparse::read_model_weights(in);
      for (const auto& layer : model) (void)layer.weight->to_dense();
    } catch (const std::exception&) {
    }
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  fuzz_one(data, size);
  return 0;
}

#ifndef TILESPARSE_LIBFUZZER

#include <filesystem>
#include <fstream>
#include <iostream>
#include <utility>
#include <vector>

namespace {

tilesparse::MatrixF random_matrix(std::size_t rows, std::size_t cols,
                                  std::uint64_t seed) {
  tilesparse::MatrixF m(rows, cols);
  tilesparse::Rng rng(seed);
  for (std::size_t i = 0; i < m.size(); ++i) m.data()[i] = rng.normal();
  return m;
}

/// Emits valid artifacts of every registered pattern-free format plus a
/// model-level container — the corpus seeds that give the fuzzer real
/// headers and payloads to mutate.
int write_seeds(const std::filesystem::path& dir) {
  std::filesystem::create_directories(dir);
  const tilesparse::MatrixF w = random_matrix(24, 32, 7);
  std::vector<std::pair<std::string, std::unique_ptr<tilesparse::PackedWeight>>>
      packed;
  for (const std::string& format : tilesparse::registered_formats()) {
    try {
      packed.emplace_back(format, tilesparse::make_packed(format, w));
    } catch (const std::exception&) {
      // Formats needing a TilePattern (tw family without options) are
      // covered through the mutation of the pattern-free seeds.
    }
  }
  for (const auto& [format, weight] : packed) {
    std::ostringstream out(std::ios::binary);
    tilesparse::write_packed_weight(out, *weight);
    std::ofstream file(dir / ("tspw_" + format + ".bin"), std::ios::binary);
    file << out.str();
  }
  std::vector<std::pair<std::string, const tilesparse::PackedWeight*>> layers;
  for (const auto& [format, weight] : packed)
    layers.emplace_back("layer." + format, weight.get());
  std::ostringstream out(std::ios::binary);
  tilesparse::write_model_weights(out, layers);
  std::ofstream file(dir / "tsmw_model.bin", std::ios::binary);
  file << out.str();
  // One legacy-layout seed keeps the v1 stream path in the mutation
  // pool (the mapped parser must keep rejecting its descendants).
  std::ostringstream v1(std::ios::binary);
  tilesparse::write_model_weights(
      v1, layers, tilesparse::wire::Layout{tilesparse::wire::kContainerVersionV1});
  std::ofstream v1_file(dir / "tsmw_model_v1.bin", std::ios::binary);
  v1_file << v1.str();
  std::cout << "wire_fuzz: wrote " << packed.size() + 2 << " seeds to " << dir
            << "\n";
  return 0;
}

int replay_file(const std::filesystem::path& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) {
    std::cerr << "wire_fuzz: cannot read " << path << "\n";
    return 1;
  }
  std::ostringstream buffer(std::ios::binary);
  buffer << file.rdbuf();
  const std::string bytes = buffer.str();
  fuzz_one(reinterpret_cast<const std::uint8_t*>(bytes.data()), bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::string(argv[1]) == "--write-seeds")
    return write_seeds(argv[2]);
  if (argc < 2) {
    std::cerr << "usage: wire_fuzz --write-seeds <dir> | wire_fuzz "
                 "<file|dir>...\n";
    return 2;
  }
  int failures = 0;
  std::size_t replayed = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path path(argv[i]);
    if (std::filesystem::is_directory(path)) {
      for (const auto& entry : std::filesystem::directory_iterator(path)) {
        if (!entry.is_regular_file()) continue;
        failures += replay_file(entry.path());
        ++replayed;
      }
    } else {
      failures += replay_file(path);
      ++replayed;
    }
  }
  std::cout << "wire_fuzz: replayed " << replayed << " input(s)\n";
  return failures == 0 ? 0 : 1;
}

#endif  // TILESPARSE_LIBFUZZER
