#include <gtest/gtest.h>

#include "tensor/matrix.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace tilesparse {
namespace {

TEST(Matrix, ConstructionZeroInitialises) {
  MatrixF m(3, 4);
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.cols(), 4u);
  EXPECT_EQ(m.size(), 12u);
  for (float v : m.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(Matrix, ElementAccessRoundTrips) {
  MatrixF m(2, 3);
  m(1, 2) = 42.0f;
  EXPECT_EQ(m(1, 2), 42.0f);
  EXPECT_EQ(m.data()[1 * 3 + 2], 42.0f);
}

TEST(Matrix, CopyIsDeep) {
  MatrixF a(2, 2);
  a(0, 0) = 1.0f;
  MatrixF b = a;
  b(0, 0) = 2.0f;
  EXPECT_EQ(a(0, 0), 1.0f);
}

TEST(Matrix, MoveTransfersOwnership) {
  MatrixF a(2, 2);
  a(0, 0) = 7.0f;
  const float* p = a.data();
  MatrixF b = std::move(a);
  EXPECT_EQ(b.data(), p);
  EXPECT_EQ(a.rows(), 0u);
}

TEST(Matrix, DataIsCacheLineAligned) {
  MatrixF m(5, 7);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.data()) % 64, 0u);
}

TEST(Matrix, RowSpanViewsCorrectSlice) {
  MatrixF m(3, 4);
  m(2, 0) = 5.0f;
  auto row = m.row(2);
  EXPECT_EQ(row.size(), 4u);
  EXPECT_EQ(row[0], 5.0f);
}

TEST(Ops, TransposeRoundTrip) {
  Rng rng(1);
  MatrixF m(13, 29);
  fill_normal(m, rng);
  const MatrixF t = transposed(m);
  ASSERT_EQ(t.rows(), 29u);
  ASSERT_EQ(t.cols(), 13u);
  const MatrixF back = transposed(t);
  EXPECT_FLOAT_EQ(max_abs_diff(m, back), 0.0f);
}

TEST(Ops, TransposeValuesCorrect) {
  MatrixF m(2, 3);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) m(r, c) = static_cast<float>(r * 10 + c);
  const MatrixF t = transposed(m);
  for (std::size_t r = 0; r < 2; ++r)
    for (std::size_t c = 0; c < 3; ++c) EXPECT_EQ(t(c, r), m(r, c));
}

TEST(Ops, SparsityCountsZeros) {
  MatrixF m(2, 2);
  m(0, 0) = 1.0f;
  EXPECT_DOUBLE_EQ(sparsity(m), 0.75);
  EXPECT_EQ(count_nonzero(m), 1u);
}

TEST(Ops, ApplyMaskZeroesWhereMaskIsZero) {
  MatrixF m(2, 2);
  m.fill(3.0f);
  MatrixU8 mask(2, 2);
  mask.fill(1);
  mask(0, 1) = 0;
  apply_mask(m, mask);
  EXPECT_EQ(m(0, 1), 0.0f);
  EXPECT_EQ(m(0, 0), 3.0f);
}

TEST(Ops, KaimingInitVarianceScales) {
  Rng rng(2);
  MatrixF m(512, 64);
  fill_kaiming(m, rng);
  double sum_sq = 0.0;
  for (float v : m.flat()) sum_sq += static_cast<double>(v) * v;
  const double var = sum_sq / static_cast<double>(m.size());
  EXPECT_NEAR(var, 2.0 / 512.0, 2.0 / 512.0 * 0.1);
}

TEST(Ops, MatmulReferenceSmallKnownResult) {
  MatrixF a(2, 2), b(2, 2);
  a(0, 0) = 1; a(0, 1) = 2; a(1, 0) = 3; a(1, 1) = 4;
  b(0, 0) = 5; b(0, 1) = 6; b(1, 0) = 7; b(1, 1) = 8;
  const MatrixF c = matmul_reference(a, b);
  EXPECT_FLOAT_EQ(c(0, 0), 19.0f);
  EXPECT_FLOAT_EQ(c(0, 1), 22.0f);
  EXPECT_FLOAT_EQ(c(1, 0), 43.0f);
  EXPECT_FLOAT_EQ(c(1, 1), 50.0f);
}

TEST(Ops, FrobeniusNormOfIdentityLike) {
  MatrixF m(3, 3);
  m(0, 0) = m(1, 1) = m(2, 2) = 2.0f;
  EXPECT_NEAR(frobenius_norm(m), std::sqrt(12.0), 1e-9);
}

}  // namespace
}  // namespace tilesparse
