#include <gtest/gtest.h>

#include "core/tew.hpp"
#include "prune/importance.hpp"
#include "prune/tw_pruner.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace tilesparse {
namespace {

MatrixF random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  MatrixF m(rows, cols);
  fill_normal(m, rng);
  return m;
}

struct TewFixture {
  MatrixF weights = random_matrix(48, 64, 1);
  MatrixF scores = magnitude_scores(weights);
  TilePattern pattern = tw_pattern_from_scores(scores, 0.80, 16);
};

TEST(Tew, SparsityDropsByDelta) {
  TewFixture f;
  const TewMatrix tew = build_tew(f.weights, f.pattern, f.scores, 0.05);
  EXPECT_NEAR(tew.ew_fraction(), 0.05, 0.01);
  EXPECT_NEAR(tew.sparsity(), f.pattern.sparsity() - 0.05, 0.01);
}

TEST(Tew, RemainderOnlyHoldsPrunedPositions) {
  TewFixture f;
  const TewMatrix tew = build_tew(f.weights, f.pattern, f.scores, 0.03);
  const MatrixU8 tw_mask = pattern_to_mask(f.pattern);
  const MatrixF rest = csc_to_dense(tew.remainder);
  for (std::size_t r = 0; r < rest.rows(); ++r) {
    for (std::size_t c = 0; c < rest.cols(); ++c) {
      if (rest(r, c) != 0.0f) {
        EXPECT_EQ(tw_mask(r, c), 0);
      }
    }
  }
}

TEST(Tew, RestoresHighestScoreElements) {
  TewFixture f;
  const TewMatrix tew = build_tew(f.weights, f.pattern, f.scores, 0.02);
  const MatrixF rest = csc_to_dense(tew.remainder);
  // Every restored element's score must be >= every non-restored pruned
  // element's score (they were chosen by rank).
  const MatrixU8 tw_mask = pattern_to_mask(f.pattern);
  float min_restored = 1e30f;
  float max_skipped = -1e30f;
  for (std::size_t r = 0; r < rest.rows(); ++r) {
    for (std::size_t c = 0; c < rest.cols(); ++c) {
      if (tw_mask(r, c)) continue;
      if (rest(r, c) != 0.0f)
        min_restored = std::min(min_restored, f.scores(r, c));
      else
        max_skipped = std::max(max_skipped, f.scores(r, c));
    }
  }
  EXPECT_GE(min_restored, max_skipped);
}

TEST(Tew, MatmulIsExactlyTwPlusEw) {
  TewFixture f;
  const TewMatrix tew = build_tew(f.weights, f.pattern, f.scores, 0.04);
  const MatrixF a = random_matrix(9, 48, 2);
  const MatrixF c = tew_matmul(a, tew);
  const MatrixF dense = tew_to_dense(tew);
  EXPECT_LT(max_abs_diff(c, matmul_reference(a, dense)), 1e-3f);
}

TEST(Tew, ZeroDeltaEqualsPureTw) {
  TewFixture f;
  const TewMatrix tew = build_tew(f.weights, f.pattern, f.scores, 0.0);
  EXPECT_EQ(tew.remainder.nnz(), 0u);
  EXPECT_NEAR(tew.sparsity(), f.pattern.sparsity(), 1e-9);
}

TEST(Tew, DeltaLargerThanPrunedRestoresEverything) {
  TewFixture f;
  const TewMatrix tew = build_tew(f.weights, f.pattern, f.scores, 1.0);
  const MatrixF dense = tew_to_dense(tew);
  // All originally non-zero weights are back (TW part + full remainder).
  EXPECT_LT(max_abs_diff(dense, f.weights), 1e-6f);
}

}  // namespace
}  // namespace tilesparse
