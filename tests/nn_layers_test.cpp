#include <gtest/gtest.h>

#include <cmath>

#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace tilesparse {
namespace {

TEST(Linear, ForwardMatchesManual) {
  Rng rng(1);
  Linear lin("l", 3, 2, rng);
  lin.weight().value(0, 0) = 1.0f;
  lin.weight().value(1, 0) = 2.0f;
  lin.weight().value(2, 0) = 3.0f;
  lin.weight().value(0, 1) = -1.0f;
  lin.weight().value(1, 1) = 0.0f;
  lin.weight().value(2, 1) = 1.0f;
  lin.bias().value(0, 0) = 0.5f;
  lin.bias().value(0, 1) = -0.5f;
  MatrixF x(1, 3);
  x(0, 0) = 1.0f;
  x(0, 1) = 2.0f;
  x(0, 2) = 3.0f;
  const MatrixF y = lin.forward(x);
  EXPECT_FLOAT_EQ(y(0, 0), 1 + 4 + 9 + 0.5f);
  EXPECT_FLOAT_EQ(y(0, 1), -1 + 0 + 3 - 0.5f);
}

TEST(ReLULayer, ForwardBackward) {
  ReLU relu;
  MatrixF x(1, 3);
  x(0, 0) = -1.0f;
  x(0, 1) = 0.0f;
  x(0, 2) = 2.0f;
  const MatrixF y = relu.forward(x);
  EXPECT_EQ(y(0, 0), 0.0f);
  EXPECT_EQ(y(0, 2), 2.0f);
  MatrixF dy(1, 3);
  dy.fill(1.0f);
  const MatrixF dx = relu.backward(dy);
  EXPECT_EQ(dx(0, 0), 0.0f);
  EXPECT_EQ(dx(0, 1), 0.0f);  // gradient at 0 defined as 0
  EXPECT_EQ(dx(0, 2), 1.0f);
}

TEST(LayerNormLayer, NormalisesRows) {
  Rng rng(2);
  LayerNorm ln("ln", 32);
  MatrixF x(4, 32);
  fill_normal(x, rng, 5.0f, 3.0f);
  const MatrixF y = ln.forward(x);
  for (std::size_t r = 0; r < y.rows(); ++r) {
    double mean = 0.0;
    for (std::size_t c = 0; c < y.cols(); ++c) mean += y(r, c);
    EXPECT_NEAR(mean / y.cols(), 0.0, 1e-4);
  }
}

TEST(EmbeddingLayer, LooksUpRows) {
  Rng rng(3);
  Embedding embed("e", 10, 4, rng);
  const MatrixF y = embed.forward({3, 7, 3});
  EXPECT_EQ(y.rows(), 3u);
  for (std::size_t c = 0; c < 4; ++c) {
    EXPECT_EQ(y(0, c), y(2, c));  // same token -> same row
  }
}

TEST(EmbeddingLayer, BackwardAccumulatesDuplicates) {
  Rng rng(4);
  Embedding embed("e", 5, 2, rng);
  embed.forward({1, 1});
  MatrixF dy(2, 2);
  dy.fill(1.0f);
  embed.backward(dy);
  EXPECT_FLOAT_EQ(embed.params()[0]->grad(1, 0), 2.0f);
  EXPECT_FLOAT_EQ(embed.params()[0]->grad(0, 0), 0.0f);
}

TEST(EmbeddingLayer, NonTrainableExposesNoParams) {
  MatrixF table(4, 3);
  Embedding embed("e", table, /*trainable=*/false);
  EXPECT_TRUE(embed.params().empty());
}

TEST(MeanPool, PoolsGroupsOfRows) {
  MeanPoolRows pool(2);
  MatrixF x(4, 1);
  x(0, 0) = 1.0f;
  x(1, 0) = 3.0f;
  x(2, 0) = 5.0f;
  x(3, 0) = 7.0f;
  const MatrixF y = pool.forward(x);
  ASSERT_EQ(y.rows(), 2u);
  EXPECT_FLOAT_EQ(y(0, 0), 2.0f);
  EXPECT_FLOAT_EQ(y(1, 0), 6.0f);
  MatrixF dy(2, 1);
  dy(0, 0) = 2.0f;
  dy(1, 0) = 4.0f;
  const MatrixF dx = pool.backward(dy);
  EXPECT_FLOAT_EQ(dx(0, 0), 1.0f);
  EXPECT_FLOAT_EQ(dx(3, 0), 2.0f);
}

TEST(Loss, CrossEntropyPerfectPredictionNearZero) {
  MatrixF logits(1, 3);
  logits(0, 1) = 100.0f;
  MatrixF dlogits;
  const float loss = softmax_cross_entropy(logits, {1}, dlogits);
  EXPECT_NEAR(loss, 0.0f, 1e-4f);
}

TEST(Loss, CrossEntropyUniformIsLogC) {
  MatrixF logits(1, 4);  // all zeros -> uniform
  MatrixF dlogits;
  const float loss = softmax_cross_entropy(logits, {2}, dlogits);
  EXPECT_NEAR(loss, std::log(4.0f), 1e-5f);
}

TEST(Loss, GradientSumsToZeroPerRow) {
  Rng rng(5);
  MatrixF logits(3, 5);
  fill_normal(logits, rng);
  MatrixF dlogits;
  softmax_cross_entropy(logits, {0, 2, 4}, dlogits);
  for (std::size_t r = 0; r < 3; ++r) {
    float sum = 0.0f;
    for (std::size_t c = 0; c < 5; ++c) sum += dlogits(r, c);
    EXPECT_NEAR(sum, 0.0f, 1e-6f);
  }
}

TEST(Loss, AccuracyCountsArgmax) {
  MatrixF logits(2, 2);
  logits(0, 0) = 1.0f;  // predicts 0
  logits(1, 1) = 1.0f;  // predicts 1
  EXPECT_DOUBLE_EQ(accuracy(logits, {0, 0}), 0.5);
}

TEST(Sgd, MovesDownhillOnQuadratic) {
  // Minimise f(w) = 0.5 * w^2 by feeding grad = w.
  Param p("w", 1, 1);
  p.value(0, 0) = 4.0f;
  SgdOptimizer opt({&p}, 0.1f, 0.0f);
  for (int i = 0; i < 100; ++i) {
    p.grad(0, 0) = p.value(0, 0);
    opt.step();
  }
  EXPECT_NEAR(p.value(0, 0), 0.0f, 1e-3f);
}

TEST(Sgd, MaskKeepsPrunedWeightsZero) {
  Param p("w", 1, 2);
  p.value(0, 0) = 1.0f;
  p.value(0, 1) = 1.0f;
  MatrixU8 mask(1, 2);
  mask(0, 0) = 1;
  mask(0, 1) = 0;
  p.mask = &mask;
  SgdOptimizer opt({&p}, 0.1f);
  p.grad(0, 0) = -1.0f;
  p.grad(0, 1) = -1.0f;  // pushes the weight up; mask must clamp it
  opt.step();
  EXPECT_GT(p.value(0, 0), 1.0f);
  EXPECT_EQ(p.value(0, 1), 0.0f);
}

TEST(Adam, ConvergesOnQuadratic) {
  Param p("w", 1, 1);
  p.value(0, 0) = 4.0f;
  AdamOptimizer opt({&p}, 0.1f);
  for (int i = 0; i < 300; ++i) {
    p.grad(0, 0) = p.value(0, 0);
    opt.step();
  }
  EXPECT_NEAR(p.value(0, 0), 0.0f, 1e-2f);
}

TEST(Params, SnapshotRestoreRoundTrips) {
  Param a("a", 2, 2), b("b", 1, 3);
  a.value(0, 0) = 1.0f;
  b.value(0, 2) = 2.0f;
  const auto snap = snapshot_params({&a, &b});
  a.value(0, 0) = 9.0f;
  b.value(0, 2) = 9.0f;
  restore_params({&a, &b}, snap);
  EXPECT_EQ(a.value(0, 0), 1.0f);
  EXPECT_EQ(b.value(0, 2), 2.0f);
}

}  // namespace
}  // namespace tilesparse
