#include <gtest/gtest.h>

#include "core/tile_pattern.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace tilesparse {
namespace {

TEST(TilePattern, FullPatternKeepsEverything) {
  const TilePattern p = full_pattern(16, 40, 8);
  EXPECT_EQ(p.tiles.size(), 5u);
  EXPECT_EQ(p.kept_elements(), 16u * 40u);
  EXPECT_DOUBLE_EQ(p.sparsity(), 0.0);
  validate_pattern(p);
}

TEST(TilePattern, ReorganizePacksSurvivingColumns) {
  // 10 columns, keep 7, G = 3 -> tiles of width 3, 3, 1.
  std::vector<std::uint8_t> keep{1, 0, 1, 1, 0, 1, 1, 0, 1, 1};
  const TilePattern p = reorganize_columns(4, 10, 3, keep);
  ASSERT_EQ(p.tiles.size(), 3u);
  EXPECT_EQ(p.tiles[0].width(), 3u);
  EXPECT_EQ(p.tiles[1].width(), 3u);
  EXPECT_EQ(p.tiles[2].width(), 1u);
  // First tile owns the first three surviving columns: 0, 2, 3.
  EXPECT_EQ(p.tiles[0].out_cols, (std::vector<std::int32_t>{0, 2, 3}));
  validate_pattern(p);
}

TEST(TilePattern, RowPruningReducesKeptElements) {
  TilePattern p = full_pattern(8, 8, 4);
  p.tiles[0].row_keep[0] = 0;
  p.tiles[0].row_keep[5] = 0;
  EXPECT_EQ(p.kept_elements(), 8u * 8u - 2u * 4u);
  EXPECT_NEAR(p.sparsity(), 8.0 / 64.0, 1e-12);
}

TEST(TilePattern, MacsAccountsPerTileWork) {
  TilePattern p = full_pattern(10, 8, 4);  // two tiles of width 4
  p.tiles[0].row_keep[0] = 0;              // tile 0 has 9 rows
  EXPECT_DOUBLE_EQ(p.macs(2), 2.0 * (9 * 4 + 10 * 4));
}

TEST(TilePattern, MaskMatchesPattern) {
  std::vector<std::uint8_t> keep{1, 1, 0, 1};
  TilePattern p = reorganize_columns(3, 4, 2, keep);
  p.tiles[0].row_keep[1] = 0;
  const MatrixU8 mask = pattern_to_mask(p);
  // Column 2 pruned entirely.
  for (std::size_t r = 0; r < 3; ++r) EXPECT_EQ(mask(r, 2), 0);
  // Row 1 pruned in tile 0 (columns 0 and 1).
  EXPECT_EQ(mask(1, 0), 0);
  EXPECT_EQ(mask(1, 1), 0);
  EXPECT_EQ(mask(1, 3), 1);  // tile 1 keeps row 1
  EXPECT_EQ(mask(0, 0), 1);
}

TEST(TilePattern, ApplyPatternZeroesPruned) {
  Rng rng(1);
  MatrixF w(6, 9);
  fill_normal(w, rng);
  std::vector<std::uint8_t> keep(9, 1);
  keep[4] = 0;
  TilePattern p = reorganize_columns(6, 9, 4, keep);
  p.tiles[0].row_keep[2] = 0;
  apply_pattern(p, w);
  for (std::size_t r = 0; r < 6; ++r) EXPECT_EQ(w(r, 4), 0.0f);
  for (auto c : p.tiles[0].out_cols)
    EXPECT_EQ(w(2, static_cast<std::size_t>(c)), 0.0f);
  EXPECT_NEAR(sparsity(w), p.sparsity(), 0.02);
}

TEST(TilePattern, ValidateCatchesColumnInTwoTiles) {
  TilePattern p = full_pattern(2, 4, 2);
  p.tiles[1].out_cols[0] = 0;  // duplicate of tile 0's column
  EXPECT_THROW(validate_pattern(p), std::logic_error);
}

TEST(TilePattern, ValidateCatchesUncoveredColumn) {
  TilePattern p = full_pattern(2, 4, 2);
  p.tiles.pop_back();
  EXPECT_THROW(validate_pattern(p), std::logic_error);
}

TEST(TilePattern, ValidateCatchesOverwideTile) {
  TilePattern p = full_pattern(2, 6, 3);
  p.g = 2;  // tiles of width 3 now exceed G
  EXPECT_THROW(validate_pattern(p), std::logic_error);
}

TEST(TilePattern, ReorganizeRejectsZeroG) {
  std::vector<std::uint8_t> keep(4, 1);
  EXPECT_THROW(reorganize_columns(2, 4, 0, keep), std::invalid_argument);
}

TEST(TilePattern, EmptyKeepGivesNoTiles) {
  std::vector<std::uint8_t> keep(5, 0);
  const TilePattern p = reorganize_columns(3, 5, 2, keep);
  EXPECT_TRUE(p.tiles.empty());
  EXPECT_DOUBLE_EQ(p.sparsity(), 1.0);
}

}  // namespace
}  // namespace tilesparse
