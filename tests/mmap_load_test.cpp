// Zero-copy artifact loading: the mmap path (MmapFile + MappedArtifact
// + the BackendRegistry view-loader table) against the stream path it
// mirrors.  Three properties are pinned here:
//
//  1. Equivalence — for every registered format, a weight loaded
//     zero-copy from a mapped v2 artifact is bit-identical to the
//     stream-loaded one: to_dense, matmul, shard_cols, bytes.
//  2. Compatibility — v1 (unaligned) artifacts still stream-load; the
//     mmap path rejects them with a message that names the fix.
//  3. Hostile input — truncated, corrupt, misaligned, or missing
//     artifacts throw std::runtime_error with offset diagnostics; they
//     never fault or feed the kernels a misaligned pointer.

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "exec/backend_registry.hpp"
#include "io/mmap_file.hpp"
#include "io/serialize.hpp"
#include "io/wire.hpp"
#include "nn/prune_experiment.hpp"
#include "prune/importance.hpp"
#include "prune/tw_pruner.hpp"
#include "serve/serving_runtime.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace tilesparse {
namespace {

MatrixF random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  MatrixF m(rows, cols);
  fill_normal(m, rng);
  return m;
}

std::unique_ptr<PackedWeight> pack_for_mmap_test(const std::string& format,
                                                 const MatrixF& w,
                                                 std::size_t g = 16,
                                                 double sparsity = 0.6) {
  const MatrixF scores = magnitude_scores(w);
  const TilePattern pattern = tw_pattern_from_scores(scores, sparsity, g);
  PackOptions options;
  options.pattern = &pattern;
  options.scores = &scores;
  return make_packed(format, w, options);
}

/// A per-test artifact path that is removed on scope exit.
class TempArtifact {
 public:
  explicit TempArtifact(const char* tag)
      : path_("/tmp/tilesparse_mmap_test_" + std::string(tag) + "_" +
              std::to_string(getpid()) + ".bin") {}
  ~TempArtifact() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

// ------------------------------------------------ mmap == stream, per format

class MappedEqualsStream : public ::testing::TestWithParam<std::string> {};

TEST_P(MappedEqualsStream, BitIdenticalEverywhere) {
  const std::string format = GetParam();
  const MatrixF w = random_matrix(64, 48, 301);
  const auto packed = pack_for_mmap_test(format, w);
  TempArtifact artifact(("eq_" + format).c_str());
  save_packed_weight(artifact.path(), *packed);

  const auto streamed = load_packed_weight(artifact.path());
  const auto mapped = load_packed_weight_mapped(artifact.path());
  ASSERT_NE(mapped, nullptr);

  // Same backend, same payload — and the mapped one borrows the file.
  EXPECT_EQ(mapped->format(), streamed->format());
  EXPECT_EQ(mapped->k(), streamed->k());
  EXPECT_EQ(mapped->n(), streamed->n());
  EXPECT_TRUE(mapped->borrows_storage());
  EXPECT_FALSE(streamed->borrows_storage());
  EXPECT_FLOAT_EQ(max_abs_diff(mapped->to_dense(), streamed->to_dense()),
                  0.0f);

  const MatrixF a = random_matrix(8, 64, 307);
  const ExecContext ctx;
  EXPECT_FLOAT_EQ(
      max_abs_diff(mapped->matmul(ctx, a), streamed->matmul(ctx, a)), 0.0f);

  // Shards materialise owning copies (they must outlive the mapping
  // independently) and still execute identically.
  ASSERT_TRUE(mapped->col_shardable());
  const auto shard_mapped = mapped->shard_cols(8, 40);
  const auto shard_streamed = streamed->shard_cols(8, 40);
  EXPECT_FALSE(shard_mapped->borrows_storage());
  EXPECT_FLOAT_EQ(max_abs_diff(shard_mapped->matmul(ctx, a),
                               shard_streamed->matmul(ctx, a)),
                  0.0f);
}

INSTANTIATE_TEST_SUITE_P(AllFormats, MappedEqualsStream,
                         ::testing::ValuesIn(registered_formats()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(MappedModel, ModelArtifactLoadsZeroCopy) {
  const MatrixF w1 = random_matrix(48, 64, 311);
  const MatrixF w2 = random_matrix(64, 32, 313);
  const auto tw = pack_for_mmap_test("tw", w1);
  const auto int8 = pack_for_mmap_test("tw-int8", w2);
  TempArtifact artifact("model");
  save_model_weights(artifact.path(),
                     {{"ffn.w", tw.get()}, {"head.w", int8.get()}});

  const auto streamed = load_model_weights(artifact.path());
  const auto mapped = load_model_weights_mapped(artifact.path());
  ASSERT_EQ(mapped.size(), 2u);
  for (std::size_t i = 0; i < mapped.size(); ++i) {
    EXPECT_EQ(mapped[i].name, streamed[i].name);
    EXPECT_TRUE(mapped[i].weight->borrows_storage());
    EXPECT_FLOAT_EQ(max_abs_diff(mapped[i].weight->to_dense(),
                                 streamed[i].weight->to_dense()),
                    0.0f);
  }
}

// ----------------------------------------------------- v1 compatibility

TEST(WireV1, StreamLoadStillWorks) {
  const MatrixF w = random_matrix(48, 48, 317);
  const auto packed = pack_for_mmap_test("tew", w);
  TempArtifact artifact("v1");
  save_packed_weight(artifact.path(), *packed,
                     wire::Layout{wire::kContainerVersionV1});

  const auto loaded = load_packed_weight(artifact.path());
  EXPECT_EQ(loaded->format(), "tew");
  EXPECT_FLOAT_EQ(max_abs_diff(loaded->to_dense(), packed->to_dense()), 0.0f);

  // A v1 file is strictly smaller (no alignment padding) than v2.
  TempArtifact v2("v2");
  save_packed_weight(v2.path(), *packed);
  EXPECT_LT(read_file(artifact.path()).size(), read_file(v2.path()).size());
}

TEST(WireV1, MappedLoadRejectsWithActionableMessage) {
  const MatrixF w = random_matrix(32, 32, 331);
  const auto packed = pack_for_mmap_test("tw", w);
  TempArtifact artifact("v1_mapped");
  save_packed_weight(artifact.path(), *packed,
                     wire::Layout{wire::kContainerVersionV1});
  try {
    load_packed_weight_mapped(artifact.path());
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    // The message must point the operator at the fix.
    EXPECT_NE(std::string(e.what()).find("stream loader"), std::string::npos)
        << e.what();
  }
  EXPECT_THROW(load_model_weights_mapped(artifact.path()), std::runtime_error);
}

// ----------------------------------------------------- hostile artifacts

TEST(MappedHostile, TruncationAlwaysThrowsNeverFaults) {
  for (const std::string& format : registered_formats()) {
    const MatrixF w = random_matrix(48, 32, 337);
    const auto packed = pack_for_mmap_test(format, w);
    TempArtifact artifact(("trunc_" + format).c_str());
    save_packed_weight(artifact.path(), *packed);
    const std::string full = read_file(artifact.path());
    // Cut at several depths: inside the header, inside the payload,
    // one byte short of complete.
    for (const std::size_t keep :
         {std::size_t{6}, full.size() / 4, full.size() / 2,
          full.size() * 3 / 4, full.size() - 1}) {
      write_file(artifact.path(), full.substr(0, keep));
      EXPECT_THROW(load_packed_weight_mapped(artifact.path()),
                   std::runtime_error)
          << format << " truncated to " << keep << " bytes";
    }
  }
}

TEST(MappedHostile, CorruptCountThrowsWithOffsetDiagnostic) {
  const MatrixF w = random_matrix(32, 32, 347);
  const auto packed = pack_for_mmap_test("tw", w);
  TempArtifact artifact("corrupt");
  save_packed_weight(artifact.path(), *packed);
  std::string bytes = read_file(artifact.path());
  // The format-name length prefix sits right after magic + version;
  // stamping it with 0xff makes every downstream size check fire.
  for (std::size_t i = 8; i < 16; ++i) bytes[i] = '\xff';
  write_file(artifact.path(), bytes);
  try {
    load_packed_weight_mapped(artifact.path());
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("offset"), std::string::npos)
        << e.what();
  }
}

TEST(MappedHostile, BadMagicThrows) {
  TempArtifact artifact("magic");
  write_file(artifact.path(), std::string(256, 'x'));
  EXPECT_THROW(load_packed_weight_mapped(artifact.path()),
               std::runtime_error);
  EXPECT_THROW(load_model_weights_mapped(artifact.path()),
               std::runtime_error);
}

TEST(MappedHostile, MissingAndEmptyFilesThrow) {
  EXPECT_THROW(MmapFile("/nonexistent/dir/artifact.bin"), std::runtime_error);
  TempArtifact artifact("empty");
  write_file(artifact.path(), "");
  EXPECT_THROW(MmapFile(artifact.path()), std::runtime_error);
}

TEST(MappedHostile, MisalignedImageBaseRejected) {
  // The v2 offsets only translate to element alignment on a 64-byte
  // aligned base; MappedArtifact refuses anything else up front.
  alignas(64) static const std::byte image[128] = {};
  EXPECT_NO_THROW(MappedArtifact(image, sizeof(image)));
  EXPECT_THROW(MappedArtifact(image + 1, sizeof(image) - 1),
               std::runtime_error);
}

// ----------------------------------------------------- atomic save

TEST(AtomicSave, NoTempFileSurvivesSuccessOrFailure) {
  const MatrixF w = random_matrix(32, 32, 353);
  const auto packed = pack_for_mmap_test("dense", w);

  // Success: the artifact exists, no .tmp. sibling does.
  TempArtifact artifact("atomic");
  save_packed_weight(artifact.path(), *packed);
  EXPECT_FALSE(read_file(artifact.path()).empty());
  EXPECT_TRUE(
      read_file(artifact.path() + ".tmp." + std::to_string(getpid())).empty());

  // Failure (unwritable directory): throws, and the destination — which
  // here pre-exists with known content — is left untouched.
  EXPECT_THROW(
      save_packed_weight("/nonexistent/dir/artifact.bin", *packed),
      std::runtime_error);
  const std::string before = read_file(artifact.path());
  const auto reloaded = load_packed_weight_mapped(artifact.path());
  EXPECT_FLOAT_EQ(max_abs_diff(reloaded->to_dense(), packed->to_dense()),
                  0.0f);
  EXPECT_EQ(read_file(artifact.path()), before);
}

// ----------------------------------------------------- serving integration

TEST(SharedModelServe, MappedModelServesIdenticallyThroughRuntime) {
  const MatrixF w1 = random_matrix(48, 64, 359);
  const MatrixF w2 = random_matrix(64, 48, 367);
  const auto tw = pack_for_mmap_test("tw", w1);
  const auto csr = pack_for_mmap_test("csr", w2);
  TempArtifact artifact("serve");
  save_model_weights(artifact.path(),
                     {{"a.w", tw.get()}, {"b.w", csr.get()}});

  const auto model = serve::SharedModel::load_mapped(artifact.path());
  ASSERT_NE(model->find("a.w"), nullptr);
  ASSERT_NE(model->find("b.w"), nullptr);
  EXPECT_EQ(model->find("nope"), nullptr);
  EXPECT_TRUE(model->find("a.w")->borrows_storage());

  serve::ServingOptions options;
  options.workers = 2;
  serve::ServingRuntime runtime(options);
  runtime.attach_model(model);

  const MatrixF a = random_matrix(4, 48, 373);
  const ExecContext ctx;
  const MatrixF expected = tw->matmul(ctx, a);

  serve::Request request;
  request.work = [&](serve::WorkerContext& context) {
    EXPECT_NE(context.model, nullptr);
    return context.model->find("a.w")->matmul(ctx, a);
  };
  const serve::RequestHandle handle = runtime.submit(std::move(request));
  const serve::Response& response = handle->wait();
  ASSERT_EQ(response.status, serve::RequestStatus::kOk) << response.error;
  EXPECT_FLOAT_EQ(max_abs_diff(response.result, expected), 0.0f);
  runtime.shutdown();

  // The runtime's reference is gone but ours still pins the mapping.
  EXPECT_TRUE(model->find("a.w")->borrows_storage());
}

TEST(MappedEvaluate, TaskEvaluatesIdenticallyFromMappedArtifact) {
  auto task = make_bert_cls_task(/*pretrain_steps=*/20, 379);
  std::vector<TilePattern> patterns;
  for (Param* p : task->prunable()) {
    const TilePattern pattern =
        tw_pattern_from_scores(magnitude_scores(p->value), 0.5, 16);
    apply_pattern(pattern, p->value);
    patterns.push_back(pattern);
  }
  TempArtifact artifact("eval");
  export_packed_weights(*task, "tw", &patterns, artifact.path());
  const double streamed =
      evaluate_from_artifact(*task, artifact.path(), ExecContext{},
                             ArtifactLoad::kStream);
  const double mapped =
      evaluate_from_artifact(*task, artifact.path(), ExecContext{},
                             ArtifactLoad::kMapped);
  EXPECT_EQ(mapped, streamed);
}

}  // namespace
}  // namespace tilesparse
