#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <sstream>
#include <string>

#include "core/tile_exec.hpp"
#include "exec/backend_registry.hpp"
#include "io/serialize.hpp"
#include "io/wire.hpp"
#include "prune/importance.hpp"
#include "prune/tw_pruner.hpp"
#include "sparse/csc.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace tilesparse {
namespace {

MatrixF random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  MatrixF m(rows, cols);
  fill_normal(m, rng);
  return m;
}

TEST(Serialize, MatrixRoundTrip) {
  const MatrixF m = random_matrix(17, 23, 1);
  std::stringstream buffer;
  write_matrix(buffer, m);
  const MatrixF back = read_matrix(buffer);
  EXPECT_EQ(back.rows(), m.rows());
  EXPECT_EQ(back.cols(), m.cols());
  EXPECT_FLOAT_EQ(max_abs_diff(m, back), 0.0f);
}

TEST(Serialize, EmptyMatrixRoundTrip) {
  std::stringstream buffer;
  write_matrix(buffer, MatrixF{});
  const MatrixF back = read_matrix(buffer);
  EXPECT_TRUE(back.empty());
}

TEST(Serialize, PatternRoundTrip) {
  const MatrixF w = random_matrix(64, 96, 2);
  const TilePattern pattern =
      tw_pattern_from_scores(magnitude_scores(w), 0.6, 16);
  std::stringstream buffer;
  write_pattern(buffer, pattern);
  const TilePattern back = read_pattern(buffer);
  EXPECT_EQ(back.k, pattern.k);
  EXPECT_EQ(back.n, pattern.n);
  EXPECT_EQ(back.g, pattern.g);
  EXPECT_EQ(back.tiles.size(), pattern.tiles.size());
  EXPECT_EQ(back.kept_elements(), pattern.kept_elements());
  for (std::size_t i = 0; i < pattern.tiles.size(); ++i) {
    EXPECT_EQ(back.tiles[i].out_cols, pattern.tiles[i].out_cols);
    EXPECT_EQ(back.tiles[i].row_keep, pattern.tiles[i].row_keep);
  }
}

TEST(Serialize, TilesRoundTripPreservesExecution) {
  MatrixF w = random_matrix(48, 64, 3);
  const TilePattern pattern =
      tw_pattern_from_scores(magnitude_scores(w), 0.5, 16);
  apply_pattern(pattern, w);
  const auto tiles = compact_tiles(w, pattern);

  std::stringstream buffer;
  write_tiles(buffer, tiles);
  const auto back = read_tiles(buffer);

  const MatrixF a = random_matrix(8, 48, 4);
  const MatrixF c1 = tw_matmul(a, tiles, 64);
  const MatrixF c2 = tw_matmul(a, back, 64);
  EXPECT_FLOAT_EQ(max_abs_diff(c1, c2), 0.0f);
}

TEST(Serialize, CsrRoundTrip) {
  Rng rng(5);
  MatrixF dense(20, 30);
  for (float& v : dense.flat()) v = rng.uniform() < 0.7f ? 0.0f : rng.normal();
  const Csr csr = csr_from_dense(dense);
  std::stringstream buffer;
  write_csr(buffer, csr);
  const Csr back = read_csr(buffer);
  EXPECT_EQ(back.nnz(), csr.nnz());
  EXPECT_FLOAT_EQ(max_abs_diff(csr_to_dense(back), dense), 0.0f);
}

TEST(Serialize, BadMagicThrows) {
  std::stringstream buffer;
  write_matrix(buffer, MatrixF(2, 2));
  EXPECT_THROW(read_pattern(buffer), std::runtime_error);
}

TEST(Serialize, TruncatedStreamThrows) {
  const MatrixF m = random_matrix(8, 8, 6);
  std::stringstream buffer;
  write_matrix(buffer, m);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_matrix(truncated), std::runtime_error);
}

TEST(Serialize, CorruptPatternFailsValidation) {
  const MatrixF w = random_matrix(16, 16, 7);
  TilePattern pattern = tw_pattern_from_scores(magnitude_scores(w), 0.5, 4);
  std::stringstream buffer;
  // Corrupt: duplicate a column across tiles before writing.
  ASSERT_GE(pattern.tiles.size(), 2u);
  pattern.tiles[1].out_cols[0] = pattern.tiles[0].out_cols[0];
  write_pattern(buffer, pattern);
  EXPECT_THROW(read_pattern(buffer), std::logic_error);
}

TEST(Serialize, FileRoundTrip) {
  const MatrixF w = random_matrix(32, 48, 8);
  const TilePattern pattern =
      tw_pattern_from_scores(magnitude_scores(w), 0.4, 8);
  const std::string path = "/tmp/tilesparse_pattern_test.bin";
  save_pattern(path, pattern);
  const TilePattern back = load_pattern(path);
  EXPECT_EQ(back.kept_elements(), pattern.kept_elements());
  EXPECT_THROW(load_pattern("/nonexistent/dir/x.bin"), std::runtime_error);
}

TEST(Serialize, CscRoundTrip) {
  Rng rng(51);
  MatrixF dense(24, 18);
  for (float& v : dense.flat()) v = rng.uniform() < 0.6f ? 0.0f : rng.normal();
  const Csc csc = csc_from_dense(dense);
  std::stringstream buffer;
  write_csc(buffer, csc);
  const Csc back = read_csc(buffer);
  EXPECT_EQ(back.nnz(), csc.nnz());
  EXPECT_FLOAT_EQ(max_abs_diff(csc_to_dense(back), dense), 0.0f);
}

TEST(Serialize, CsrRejectsOutOfRangeIndices) {
  Rng rng(52);
  MatrixF dense(8, 8);
  fill_normal(dense, rng);
  Csr csr = csr_from_dense(dense);
  csr.col_idx.front() = 100;  // out of [0, cols)
  std::stringstream buffer;
  write_csr(buffer, csr);
  EXPECT_THROW(read_csr(buffer), std::runtime_error);
}

// ------------------------------------------------- whole-PackedWeight

/// Packs `w` under `format`, supplying a TW pattern and pre-pruning
/// scores where the format needs them.
std::unique_ptr<PackedWeight> pack_for_serialize_test(
    const std::string& format, const MatrixF& w, std::size_t g = 16,
    double sparsity = 0.6) {
  const MatrixF scores = magnitude_scores(w);
  const TilePattern pattern = tw_pattern_from_scores(scores, sparsity, g);
  PackOptions options;
  options.pattern = &pattern;
  options.scores = &scores;
  return make_packed(format, w, options);
}

class PackedWeightRoundTrip : public ::testing::TestWithParam<std::string> {};

TEST_P(PackedWeightRoundTrip, ReproducesObjectExactly) {
  const std::string format = GetParam();
  const MatrixF w = random_matrix(64, 48, 31);
  const auto packed = pack_for_serialize_test(format, w);

  std::stringstream buffer;
  write_packed_weight(buffer, *packed);
  const auto loaded = read_packed_weight(buffer);
  ASSERT_NE(loaded, nullptr);

  // The loaded object is the same backend with the same payload:
  // format, shape, storage footprint and reconstruction all exact.
  EXPECT_EQ(loaded->format(), packed->format());
  EXPECT_EQ(loaded->k(), packed->k());
  EXPECT_EQ(loaded->n(), packed->n());
  EXPECT_EQ(loaded->bytes(), packed->bytes());
  EXPECT_FLOAT_EQ(max_abs_diff(loaded->to_dense(), packed->to_dense()), 0.0f);

  // And it serves matmul bit-identically — no re-packing and (for
  // tw-int8) no re-quantisation happened on load.
  const MatrixF a = random_matrix(8, 64, 37);
  const ExecContext ctx;
  EXPECT_FLOAT_EQ(
      max_abs_diff(loaded->matmul(ctx, a), packed->matmul(ctx, a)), 0.0f);
}

INSTANTIATE_TEST_SUITE_P(AllFormats, PackedWeightRoundTrip,
                         ::testing::ValuesIn(registered_formats()),
                         [](const auto& info) {
                           std::string name = info.param;
                           for (char& c : name)
                             if (c == '-') c = '_';
                           return name;
                         });

TEST(PackedWeightArtifact, FileRoundTrip) {
  const MatrixF w = random_matrix(32, 32, 41);
  const auto packed = pack_for_serialize_test("tw", w);
  const std::string path = "/tmp/tilesparse_packed_weight_test.bin";
  save_packed_weight(path, *packed);
  const auto loaded = load_packed_weight(path);
  EXPECT_EQ(loaded->format(), "tw");
  EXPECT_FLOAT_EQ(max_abs_diff(loaded->to_dense(), packed->to_dense()), 0.0f);
  std::remove(path.c_str());
}

TEST(PackedWeightArtifact, BadMagicThrows) {
  std::stringstream buffer;
  write_matrix(buffer, MatrixF(4, 4));  // a matrix is not a container
  EXPECT_THROW(read_packed_weight(buffer), std::runtime_error);
}

TEST(PackedWeightArtifact, VersionMismatchThrows) {
  std::stringstream buffer;
  wire::write_pod(buffer, wire::kMagicPackedWeight);
  wire::write_pod<std::uint32_t>(buffer, 999);
  EXPECT_THROW(read_packed_weight(buffer), std::runtime_error);
}

TEST(PackedWeightArtifact, UnknownFormatThrows) {
  std::stringstream buffer;
  wire::write_pod(buffer, wire::kMagicPackedWeight);
  wire::write_pod(buffer, wire::kContainerVersion);
  wire::write_string(buffer, "no-such-format");
  wire::write_pod<std::uint64_t>(buffer, 4);
  wire::write_pod<std::uint64_t>(buffer, 4);
  try {
    read_packed_weight(buffer);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("no-such-format"), std::string::npos);
  }
}

TEST(PackedWeightArtifact, TruncatedPayloadThrows) {
  for (const std::string& format : registered_formats()) {
    const MatrixF w = random_matrix(32, 32, 43);
    const auto packed = pack_for_serialize_test(format, w);
    std::stringstream buffer;
    write_packed_weight(buffer, *packed);
    const std::string full = buffer.str();
    // Cut inside the payload (past the container header) — every
    // format must fail with runtime_error, never bad_alloc or UB.
    std::stringstream truncated(full.substr(0, full.size() * 3 / 4));
    EXPECT_THROW(read_packed_weight(truncated), std::runtime_error) << format;
  }
}

TEST(PackedWeightArtifact, GarbageSizePrefixThrowsNotBadAlloc) {
  // A corrupt 64-bit length must be rejected against the remaining
  // stream bytes before any allocation happens.
  MatrixF w = random_matrix(32, 32, 47);
  const TilePattern pattern =
      tw_pattern_from_scores(magnitude_scores(w), 0.5, 16);
  apply_pattern(pattern, w);
  std::stringstream buffer;
  write_tiles(buffer, compact_tiles(w, pattern));
  std::string bytes = buffer.str();
  // Offset 8 is the tile-count u64 (after magic + version).
  for (std::size_t i = 8; i < 16; ++i) bytes[i] = '\xff';
  std::stringstream corrupt(bytes);
  EXPECT_THROW(read_tiles(corrupt), std::runtime_error);
}

TEST(ModelArtifact, RoundTripsNamedLayers) {
  const MatrixF w1 = random_matrix(32, 48, 53);
  const MatrixF w2 = random_matrix(48, 16, 59);
  const auto tw = pack_for_serialize_test("tw", w1);
  const auto int8 = pack_for_serialize_test("tw-int8", w2);

  std::stringstream buffer;
  write_model_weights(buffer, {{"ffn.w", tw.get()}, {"head.w", int8.get()}});
  const auto loaded = read_model_weights(buffer);
  ASSERT_EQ(loaded.size(), 2u);
  EXPECT_EQ(loaded[0].name, "ffn.w");
  EXPECT_EQ(loaded[0].weight->format(), "tw");
  EXPECT_EQ(loaded[1].name, "head.w");
  EXPECT_EQ(loaded[1].weight->format(), "tw-int8");
  EXPECT_FLOAT_EQ(max_abs_diff(loaded[0].weight->to_dense(), tw->to_dense()),
                  0.0f);
  EXPECT_FLOAT_EQ(
      max_abs_diff(loaded[1].weight->to_dense(), int8->to_dense()), 0.0f);
}

TEST(ModelArtifact, RejectsPackedWeightContainer) {
  const MatrixF w = random_matrix(16, 16, 61);
  const auto packed = pack_for_serialize_test("dense", w);
  std::stringstream buffer;
  write_packed_weight(buffer, *packed);  // wrong container kind
  EXPECT_THROW(read_model_weights(buffer), std::runtime_error);
}

TEST(Serialize, CalibrationJsonRoundTrip) {
  PlannerCalibration calib;
  calib.csr_mac_penalty = 12.5;
  calib.tw_mac_penalty = 1.25;
  calib.int8_mac_discount = 0.75;
  calib.macs_per_byte = 2.5;
  calib.dense_gflops = 42.0;
  calib.source = "unit test host";
  std::stringstream buffer;
  write_calibration_json(buffer, calib);
  const PlannerCalibration back = read_calibration_json(buffer);
  EXPECT_DOUBLE_EQ(back.csr_mac_penalty, calib.csr_mac_penalty);
  EXPECT_DOUBLE_EQ(back.tw_mac_penalty, calib.tw_mac_penalty);
  EXPECT_DOUBLE_EQ(back.int8_mac_discount, calib.int8_mac_discount);
  EXPECT_DOUBLE_EQ(back.macs_per_byte, calib.macs_per_byte);
  EXPECT_DOUBLE_EQ(back.dense_gflops, calib.dense_gflops);
  EXPECT_EQ(back.source, calib.source);
  EXPECT_TRUE(back.measured());
}

TEST(Serialize, CalibrationMissingKeysKeepDefaults) {
  std::stringstream buffer("{\"csr_mac_penalty\": 20.0}");
  const PlannerCalibration back = read_calibration_json(buffer);
  EXPECT_DOUBLE_EQ(back.csr_mac_penalty, 20.0);
  const PlannerCalibration defaults;
  EXPECT_DOUBLE_EQ(back.macs_per_byte, defaults.macs_per_byte);
  EXPECT_FALSE(back.measured());  // no dense_gflops recorded
}

TEST(Serialize, CalibrationRejectsNonJson) {
  std::stringstream buffer("not json at all");
  EXPECT_THROW(read_calibration_json(buffer), std::runtime_error);
}

}  // namespace
}  // namespace tilesparse
