#include <gtest/gtest.h>

#include <sstream>

#include "core/tile_exec.hpp"
#include "io/serialize.hpp"
#include "prune/importance.hpp"
#include "prune/tw_pruner.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace tilesparse {
namespace {

MatrixF random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  MatrixF m(rows, cols);
  fill_normal(m, rng);
  return m;
}

TEST(Serialize, MatrixRoundTrip) {
  const MatrixF m = random_matrix(17, 23, 1);
  std::stringstream buffer;
  write_matrix(buffer, m);
  const MatrixF back = read_matrix(buffer);
  EXPECT_EQ(back.rows(), m.rows());
  EXPECT_EQ(back.cols(), m.cols());
  EXPECT_FLOAT_EQ(max_abs_diff(m, back), 0.0f);
}

TEST(Serialize, EmptyMatrixRoundTrip) {
  std::stringstream buffer;
  write_matrix(buffer, MatrixF{});
  const MatrixF back = read_matrix(buffer);
  EXPECT_TRUE(back.empty());
}

TEST(Serialize, PatternRoundTrip) {
  const MatrixF w = random_matrix(64, 96, 2);
  const TilePattern pattern =
      tw_pattern_from_scores(magnitude_scores(w), 0.6, 16);
  std::stringstream buffer;
  write_pattern(buffer, pattern);
  const TilePattern back = read_pattern(buffer);
  EXPECT_EQ(back.k, pattern.k);
  EXPECT_EQ(back.n, pattern.n);
  EXPECT_EQ(back.g, pattern.g);
  EXPECT_EQ(back.tiles.size(), pattern.tiles.size());
  EXPECT_EQ(back.kept_elements(), pattern.kept_elements());
  for (std::size_t i = 0; i < pattern.tiles.size(); ++i) {
    EXPECT_EQ(back.tiles[i].out_cols, pattern.tiles[i].out_cols);
    EXPECT_EQ(back.tiles[i].row_keep, pattern.tiles[i].row_keep);
  }
}

TEST(Serialize, TilesRoundTripPreservesExecution) {
  MatrixF w = random_matrix(48, 64, 3);
  const TilePattern pattern =
      tw_pattern_from_scores(magnitude_scores(w), 0.5, 16);
  apply_pattern(pattern, w);
  const auto tiles = compact_tiles(w, pattern);

  std::stringstream buffer;
  write_tiles(buffer, tiles);
  const auto back = read_tiles(buffer);

  const MatrixF a = random_matrix(8, 48, 4);
  const MatrixF c1 = tw_matmul(a, tiles, 64);
  const MatrixF c2 = tw_matmul(a, back, 64);
  EXPECT_FLOAT_EQ(max_abs_diff(c1, c2), 0.0f);
}

TEST(Serialize, CsrRoundTrip) {
  Rng rng(5);
  MatrixF dense(20, 30);
  for (float& v : dense.flat()) v = rng.uniform() < 0.7f ? 0.0f : rng.normal();
  const Csr csr = csr_from_dense(dense);
  std::stringstream buffer;
  write_csr(buffer, csr);
  const Csr back = read_csr(buffer);
  EXPECT_EQ(back.nnz(), csr.nnz());
  EXPECT_FLOAT_EQ(max_abs_diff(csr_to_dense(back), dense), 0.0f);
}

TEST(Serialize, BadMagicThrows) {
  std::stringstream buffer;
  write_matrix(buffer, MatrixF(2, 2));
  EXPECT_THROW(read_pattern(buffer), std::runtime_error);
}

TEST(Serialize, TruncatedStreamThrows) {
  const MatrixF m = random_matrix(8, 8, 6);
  std::stringstream buffer;
  write_matrix(buffer, m);
  const std::string full = buffer.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW(read_matrix(truncated), std::runtime_error);
}

TEST(Serialize, CorruptPatternFailsValidation) {
  const MatrixF w = random_matrix(16, 16, 7);
  TilePattern pattern = tw_pattern_from_scores(magnitude_scores(w), 0.5, 4);
  std::stringstream buffer;
  // Corrupt: duplicate a column across tiles before writing.
  ASSERT_GE(pattern.tiles.size(), 2u);
  pattern.tiles[1].out_cols[0] = pattern.tiles[0].out_cols[0];
  write_pattern(buffer, pattern);
  EXPECT_THROW(read_pattern(buffer), std::logic_error);
}

TEST(Serialize, FileRoundTrip) {
  const MatrixF w = random_matrix(32, 48, 8);
  const TilePattern pattern =
      tw_pattern_from_scores(magnitude_scores(w), 0.4, 8);
  const std::string path = "/tmp/tilesparse_pattern_test.bin";
  save_pattern(path, pattern);
  const TilePattern back = load_pattern(path);
  EXPECT_EQ(back.kept_elements(), pattern.kept_elements());
  EXPECT_THROW(load_pattern("/nonexistent/dir/x.bin"), std::runtime_error);
}

TEST(Serialize, CalibrationJsonRoundTrip) {
  PlannerCalibration calib;
  calib.csr_mac_penalty = 12.5;
  calib.tw_mac_penalty = 1.25;
  calib.int8_mac_discount = 0.75;
  calib.macs_per_byte = 2.5;
  calib.dense_gflops = 42.0;
  calib.source = "unit test host";
  std::stringstream buffer;
  write_calibration_json(buffer, calib);
  const PlannerCalibration back = read_calibration_json(buffer);
  EXPECT_DOUBLE_EQ(back.csr_mac_penalty, calib.csr_mac_penalty);
  EXPECT_DOUBLE_EQ(back.tw_mac_penalty, calib.tw_mac_penalty);
  EXPECT_DOUBLE_EQ(back.int8_mac_discount, calib.int8_mac_discount);
  EXPECT_DOUBLE_EQ(back.macs_per_byte, calib.macs_per_byte);
  EXPECT_DOUBLE_EQ(back.dense_gflops, calib.dense_gflops);
  EXPECT_EQ(back.source, calib.source);
  EXPECT_TRUE(back.measured());
}

TEST(Serialize, CalibrationMissingKeysKeepDefaults) {
  std::stringstream buffer("{\"csr_mac_penalty\": 20.0}");
  const PlannerCalibration back = read_calibration_json(buffer);
  EXPECT_DOUBLE_EQ(back.csr_mac_penalty, 20.0);
  const PlannerCalibration defaults;
  EXPECT_DOUBLE_EQ(back.macs_per_byte, defaults.macs_per_byte);
  EXPECT_FALSE(back.measured());  // no dense_gflops recorded
}

TEST(Serialize, CalibrationRejectsNonJson) {
  std::stringstream buffer("not json at all");
  EXPECT_THROW(read_calibration_json(buffer), std::runtime_error);
}

}  // namespace
}  // namespace tilesparse
