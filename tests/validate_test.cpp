// Static ExecGraph verifier (exec/validate.hpp): every class of
// malformed graph — cycles, reads before any writer, slot-implied
// hazards with no covering dependency path, bad shard plans, shape
// mismatches — is rejected with a diagnostic naming the offending
// nodes/slots, while the real model graphs (Bert/NMT/VGG) validate
// clean.  The scheduler runs this audit once per graph build, so a
// malformed plan throws GraphValidationError before any dispatch.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "exec/backend_registry.hpp"
#include "exec/graph.hpp"
#include "exec/scheduler.hpp"
#include "exec/validate.hpp"
#include "nn/bert_mini.hpp"
#include "nn/nmt_mini.hpp"
#include "nn/vgg_mini.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "workload/datasets.hpp"

namespace tilesparse {
namespace {

MatrixF random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  MatrixF m(rows, cols);
  fill_normal(m, rng);
  return m;
}

bool has_finding(const std::vector<GraphFinding>& findings,
                 const std::string& code, const std::string& substring,
                 FindingSeverity severity = FindingSeverity::kError) {
  return std::any_of(findings.begin(), findings.end(),
                     [&](const GraphFinding& f) {
                       return f.severity == severity && f.code == code &&
                              f.message.find(substring) != std::string::npos;
                     });
}

std::string render(const std::vector<GraphFinding>& findings) {
  std::string all;
  for (const GraphFinding& f : findings) all += to_string(f) + "\n";
  return all;
}

// ------------------------------------------------------ fixture: cycle

TEST(ValidateTest, CycleIsReportedWithPath) {
  ExecGraph g;
  const auto s = g.add_slot("s");
  const auto t = g.add_slot("t");
  const auto n0 = g.add_host("alpha", {}, {s}, [](ExecGraph&) {});
  const auto n1 = g.add_host("beta", {s}, {t}, [](ExecGraph&) {});
  g.add_dep(n0, n1);  // closes alpha -> beta -> alpha
  const auto findings = validate_graph(g);
  EXPECT_TRUE(has_finding(findings, "cycle", "'alpha'")) << render(findings);
  EXPECT_TRUE(has_finding(findings, "cycle", "->")) << render(findings);
  EXPECT_THROW(g.topo_order(), std::logic_error);
  EXPECT_THROW(validate_graph_or_throw(g), GraphValidationError);
}

// -------------------------------------------- fixture: read-before-write

TEST(ValidateTest, ReadBeforeWriteNamesReaderAndSlot) {
  // `consumer` reads `data` before `producer` (which has no ordering
  // edge forcing it first): the walk sees the read while the slot is
  // unwritten AND the hazard audit sees a writer with no path.
  ExecGraph g;
  g.set_auto_deps(false);
  const auto data = g.add_slot("data");
  const auto out = g.add_slot("out");
  g.mark_output(out);
  g.add_host("consumer", {data}, {out}, [](ExecGraph&) {});
  g.add_host("producer", {}, {data}, [](ExecGraph&) {});
  const auto findings = validate_graph(g);
  EXPECT_TRUE(has_finding(findings, "read-before-write", "'consumer'"))
      << render(findings);
  EXPECT_TRUE(has_finding(findings, "read-before-write", "slot 'data'"))
      << render(findings);
  EXPECT_THROW(validate_graph_or_throw(g), GraphValidationError);
}

TEST(ValidateTest, UnwrittenUnmarkedReadIsErrorOnlyWithDeclaredIo) {
  // Legacy graphs (no mark_input/mark_output anywhere) get leniency: an
  // externally fed slot reads as a warning, not an error.
  ExecGraph legacy;
  const auto in = legacy.add_slot("in");
  legacy.add_host("use", {in}, {}, [](ExecGraph&) {});
  const auto lenient = validate_graph(legacy);
  EXPECT_TRUE(has_finding(lenient, "read-before-write", "mark_input",
                          FindingSeverity::kWarning))
      << render(lenient);
  EXPECT_NO_THROW(validate_graph_or_throw(legacy));

  // Once the builder declares I/O, the same shape is an error...
  ExecGraph strict;
  const auto sin = strict.add_slot("in");
  const auto sout = strict.add_slot("out");
  strict.mark_output(sout);
  strict.add_host("use", {sin}, {sout}, [](ExecGraph&) {});
  EXPECT_THROW(validate_graph_or_throw(strict), GraphValidationError);

  // ...unless the slot is a declared input.
  ExecGraph ok;
  const auto oin = ok.add_slot("in");
  const auto oout = ok.add_slot("out");
  ok.mark_input(oin);
  ok.mark_output(oout);
  ok.add_host("use", {oin}, {oout}, [](ExecGraph&) {});
  EXPECT_NO_THROW(validate_graph_or_throw(ok));
}

// -------------------------------------------- fixture: missing hazard edge

TEST(ValidateTest, MissingRawEdgeIsReported) {
  // Manual wiring that forgot the RAW edge writer -> reader.
  ExecGraph g;
  g.set_auto_deps(false);
  const auto s = g.add_slot("s");
  const auto out = g.add_slot("out");
  g.mark_output(out);
  const auto w = g.add_host("writer", {}, {s}, [](ExecGraph&) {});
  const auto r = g.add_host("reader", {s}, {out}, [](ExecGraph&) {});
  (void)w;
  (void)r;
  const auto findings = validate_graph(g);
  EXPECT_TRUE(has_finding(findings, "missing-dep", "RAW hazard"))
      << render(findings);
  EXPECT_TRUE(has_finding(findings, "missing-dep", "'writer'"))
      << render(findings);
  EXPECT_THROW(validate_graph_or_throw(g), GraphValidationError);

  // Adding the forgotten edge fixes it.
  g.add_dep(r, w);
  EXPECT_NO_THROW(validate_graph_or_throw(g));
}

TEST(ValidateTest, MissingWawAndWarEdgesAreReported) {
  ExecGraph g;
  g.set_auto_deps(false);
  const auto s = g.add_slot("s");
  const auto out = g.add_slot("out");
  g.mark_output(out);
  const auto w0 = g.add_host("first_write", {}, {s}, [](ExecGraph&) {});
  const auto rd = g.add_host("reader", {s}, {out}, [](ExecGraph&) {});
  g.add_dep(rd, w0);  // RAW covered
  // Second writer with no path from the first writer nor the reader.
  g.add_host("second_write", {}, {s}, [](ExecGraph&) {});
  const auto findings = validate_graph(g);
  EXPECT_TRUE(has_finding(findings, "missing-dep", "WAW hazard"))
      << render(findings);
  EXPECT_TRUE(has_finding(findings, "missing-dep", "WAR hazard"))
      << render(findings);
}

TEST(ValidateTest, TransitivePathCoversHazard) {
  // Hazard coverage accepts any dependency *path*, not just a direct
  // edge: writer -> middle -> reader is fine.
  ExecGraph g;
  g.set_auto_deps(false);
  const auto s = g.add_slot("s");
  const auto out = g.add_slot("out");
  g.mark_output(out);
  const auto w = g.add_host("writer", {}, {s}, [](ExecGraph&) {});
  const auto m = g.add_host("middle", {}, {}, [](ExecGraph&) {});
  const auto r = g.add_host("reader", {s}, {out}, [](ExecGraph&) {});
  g.add_dep(m, w);
  g.add_dep(r, m);
  EXPECT_NO_THROW(validate_graph_or_throw(g));
}

// ------------------------------------------- fixture: bad shard slices

TEST(ValidateTest, OverlappingShardSlicesAreReported) {
  const MatrixF w = random_matrix(16, 64, 3);
  const auto packed = make_packed("dense", w);
  const auto findings = audit_shard_slices(
      *packed, {{0, 24}, {16, 40}, {40, 64}});
  EXPECT_TRUE(has_finding(findings, "shard-plan", "computed twice"))
      << render(findings);
}

TEST(ValidateTest, ShardGapAndCoverageAreReported) {
  const MatrixF w = random_matrix(16, 64, 3);
  const auto packed = make_packed("dense", w);
  const auto gap = audit_shard_slices(*packed, {{0, 16}, {24, 64}});
  EXPECT_TRUE(has_finding(gap, "shard-plan", "skips columns")) << render(gap);
  const auto partial = audit_shard_slices(*packed, {{0, 16}, {16, 48}});
  EXPECT_TRUE(has_finding(partial, "shard-plan", "N = 64")) << render(partial);
  const auto good =
      audit_shard_slices(*packed, {{0, 16}, {16, 48}, {48, 64}},
                         /*deep_check=*/true);
  EXPECT_TRUE(good.empty()) << render(good);
}

// --------------------------------------------- fixture: shape mismatch

TEST(ValidateTest, GemmInputWidthMismatchIsReported) {
  // fc2 expects K = 32 but is fed fc1's N = 48 output.
  const MatrixF w1 = random_matrix(24, 48, 4);
  const MatrixF w2 = random_matrix(32, 8, 5);
  const auto p1 = make_packed("dense", w1);
  const auto p2 = make_packed("dense", w2);
  ExecGraph g;
  const auto in = g.add_slot("in");
  const auto mid = g.add_slot("mid");
  const auto out = g.add_slot("out");
  g.mark_input(in);
  g.mark_output(out);
  g.add_gemm("fc1", p1.get(), in, mid);
  g.add_gemm("fc2", p2.get(), mid, out);
  const auto findings = validate_graph(g);
  EXPECT_TRUE(has_finding(findings, "shape-mismatch", "'fc2'"))
      << render(findings);
  EXPECT_TRUE(has_finding(findings, "shape-mismatch", "48"))
      << render(findings);
  EXPECT_THROW(validate_graph_or_throw(g), GraphValidationError);
}

TEST(ValidateTest, BadBiasShapeIsReported) {
  const MatrixF w = random_matrix(16, 32, 6);
  const MatrixF bias = random_matrix(1, 24, 7);  // want 1 x 32
  const auto packed = make_packed("dense", w);
  ExecGraph g;
  const auto in = g.add_slot("in");
  const auto out = g.add_slot("out");
  g.mark_input(in);
  g.mark_output(out);
  g.add_gemm("fc", packed.get(), in, out, ExecContext{}, &bias);
  const auto findings = validate_graph(g);
  EXPECT_TRUE(has_finding(findings, "shape-mismatch", "bias"))
      << render(findings);
}

// ------------------------------------------------- warnings, dead code

TEST(ValidateTest, DeadWritesAndDeadNodesWarn) {
  const MatrixF w = random_matrix(16, 32, 8);
  const auto packed = make_packed("dense", w);
  ExecGraph g;
  const auto in = g.add_slot("in");
  const auto unused = g.add_slot("unused");
  const auto out = g.add_slot("out");
  g.mark_input(in);
  g.mark_output(out);
  g.add_gemm("dead_gemm", packed.get(), in, unused);  // nothing reads it
  g.add_host("to_out", {in}, {out}, [](ExecGraph&) {});
  const auto findings = validate_graph(g);
  EXPECT_TRUE(has_finding(findings, "dead-node", "'dead_gemm'",
                          FindingSeverity::kWarning))
      << render(findings);
  // Warnings alone do not throw.
  EXPECT_NO_THROW(validate_graph_or_throw(g));
}

// --------------------------------------------- scheduler integration

TEST(ValidateTest, SchedulerRejectsMalformedGraphBeforeDispatch) {
  ExecGraph g;
  g.set_auto_deps(false);
  const auto s = g.add_slot("s");
  const auto out = g.add_slot("out");
  g.mark_output(out);
  bool consumer_ran = false;
  g.add_host("consumer", {s}, {out},
             [&consumer_ran](ExecGraph&) { consumer_ran = true; });
  g.add_host("producer", {}, {s}, [](ExecGraph&) {});
  ExecScheduler scheduler;
  EXPECT_THROW(scheduler.run(g), GraphValidationError);
  EXPECT_FALSE(consumer_ran);  // rejected before any node executed
}

TEST(ValidateTest, SchedulerValidatesOncePerBuildId) {
  ExecGraph g;
  const auto in = g.add_slot("in");
  const auto out = g.add_slot("out");
  g.mark_input(in);
  g.mark_output(out);
  int runs = 0;
  g.add_host("copy", {in}, {out}, [&runs, in, out](ExecGraph& gg) {
    gg.slot(out) = gg.slot(in);
    ++runs;
  });
  SchedulerOptions options;
  options.streams = 1;
  ExecScheduler scheduler(options);
  g.slot(in) = random_matrix(2, 3, 9);
  scheduler.run(g);
  scheduler.run(g);
  EXPECT_EQ(runs, 2);
}

TEST(ValidateTest, SchedulerValidationCanBeDisabled) {
  ExecGraph g;
  g.set_auto_deps(false);
  const auto s = g.add_slot("s");
  const auto out = g.add_slot("out");
  g.mark_output(out);
  g.add_host("consumer", {s}, {out}, [](ExecGraph&) {});
  g.add_host("producer", {}, {s}, [](ExecGraph&) {});
  SchedulerOptions options;
  options.streams = 1;
  options.validate = false;
  ExecScheduler scheduler(options);
  EXPECT_NO_THROW(scheduler.run(g));
}

// ------------------------------------------- real model graphs are clean

TEST(ValidateTest, BertGraphValidatesClean) {
  const BertMiniConfig config;
  TokenTeacherDataset dataset(64, config.seq, config.classes, config.dim, 91);
  BertMini model(config, dataset.embedding());
  model.pack_weights("dense");
  ExecGraph& graph = model.build_exec_graph();
  const auto findings = validate_graph(graph);
  EXPECT_TRUE(findings.empty()) << render(findings);
}

TEST(ValidateTest, NmtGraphValidatesClean) {
  NmtMini model(NmtMiniConfig{});
  model.pack_weights("dense");
  ExecGraph& graph = model.build_exec_graph();
  const auto findings = validate_graph(graph);
  EXPECT_TRUE(findings.empty()) << render(findings);
}

TEST(ValidateTest, VggGraphValidatesClean) {
  VggMini model(VggMiniConfig{});
  model.pack_weights("dense");
  ExecGraph& graph = model.build_exec_graph();
  const auto findings = validate_graph(graph);
  EXPECT_TRUE(findings.empty()) << render(findings);
}

TEST(ValidateTest, VggGraphForwardMatchesSync) {
  const VggMiniConfig config;
  VggMini model(config);
  const MatrixF images = random_matrix(
      6, config.channels * config.height * config.width, 11);
  const MatrixF sync = model.forward(images);
  SchedulerOptions options;
  options.streams = 1;
  ExecScheduler scheduler(options);
  model.set_exec_scheduler(&scheduler);
  const MatrixF scheduled = model.forward(images);
  EXPECT_THROW(model.backward(scheduled), std::logic_error);
  model.set_exec_scheduler(nullptr);
  ASSERT_EQ(scheduled.rows(), sync.rows());
  ASSERT_EQ(scheduled.cols(), sync.cols());
  for (std::size_t i = 0; i < sync.size(); ++i)
    EXPECT_FLOAT_EQ(scheduled.data()[i], sync.data()[i]);
}

}  // namespace
}  // namespace tilesparse
