#include <gtest/gtest.h>

#include "prune/importance.hpp"
#include "prune/tw_pruner.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace tilesparse {
namespace {

MatrixF random_weights(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  MatrixF m(rows, cols);
  fill_normal(m, rng);
  return m;
}

class TwSparsityTest : public ::testing::TestWithParam<double> {};

TEST_P(TwSparsityTest, PatternFromScoresHitsTarget) {
  const double target = GetParam();
  const MatrixF w = random_weights(96, 128, 1);
  const TilePattern p =
      tw_pattern_from_scores(magnitude_scores(w), target, 32);
  validate_pattern(p);
  EXPECT_NEAR(p.sparsity(), target, 0.06) << "target " << target;
}

INSTANTIATE_TEST_SUITE_P(Targets, TwSparsityTest,
                         ::testing::Values(0.1, 0.25, 0.5, 0.75, 0.9));

TEST(TwPruner, SingleMatrixReachesTargetAndValidates) {
  MatrixF w = random_weights(64, 96, 2);
  TwPruneOptions options;
  options.target_sparsity = 0.7;
  options.g = 16;
  options.stages = 4;
  const TilePattern p = tw_prune_single(w, options);
  validate_pattern(p);
  EXPECT_NEAR(p.sparsity(), 0.7, 0.06);
  EXPECT_NEAR(sparsity(w), 0.7, 0.06);
}

TEST(TwPruner, WeightsMatchPatternMask) {
  MatrixF w = random_weights(48, 64, 3);
  TwPruneOptions options;
  options.target_sparsity = 0.6;
  options.g = 16;
  const TilePattern p = tw_prune_single(w, options);
  const MatrixU8 mask = pattern_to_mask(p);
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (!mask.data()[i]) {
      EXPECT_EQ(w.data()[i], 0.0f);
    }
  }
}

TEST(TwPruner, MultiStageIsMonotonicallySparser) {
  MatrixF w = random_weights(64, 64, 4);
  TwPruneOptions options;
  options.target_sparsity = 0.75;
  options.g = 16;
  options.stages = 5;
  std::vector<double> stage_sparsities;
  tw_prune({&w}, options, /*score_fn=*/{},
           [&](const std::vector<MatrixU8>&) {
             stage_sparsities.push_back(sparsity(w));
           });
  ASSERT_EQ(stage_sparsities.size(), 5u);
  for (std::size_t i = 1; i < stage_sparsities.size(); ++i)
    EXPECT_GE(stage_sparsities[i], stage_sparsities[i - 1] - 1e-9);
}

TEST(TwPruner, GlobalRankAllocatesUnevenly) {
  // Matrix A has much larger weights than B: global ranking should prune
  // B harder than A at the same overall budget.
  Rng rng(5);
  MatrixF a(64, 64), b(64, 64);
  fill_normal(a, rng, 0.0f, 2.0f);
  fill_normal(b, rng, 0.0f, 0.2f);
  TwPruneOptions options;
  options.target_sparsity = 0.5;
  options.g = 16;
  options.stages = 1;
  tw_prune({&a, &b}, options);
  EXPECT_LT(sparsity(a), 0.30);
  EXPECT_GT(sparsity(b), 0.70);
}

TEST(TwPruner, PerMatrixRankIsEven) {
  Rng rng(6);
  MatrixF a(64, 64), b(64, 64);
  fill_normal(a, rng, 0.0f, 2.0f);
  fill_normal(b, rng, 0.0f, 0.2f);
  TwPruneOptions options;
  options.target_sparsity = 0.5;
  options.g = 16;
  options.stages = 1;
  options.global_rank = false;
  tw_prune({&a, &b}, options);
  EXPECT_NEAR(sparsity(a), 0.5, 0.08);
  EXPECT_NEAR(sparsity(b), 0.5, 0.08);
}

TEST(TwPruner, ColumnSplitExtremesPruneOnlyOneAxis) {
  {
    MatrixF w = random_weights(32, 64, 7);
    TwPruneOptions options;
    options.target_sparsity = 0.5;
    options.g = 16;
    options.stages = 1;
    options.column_split = 1.0;  // columns only
    const TilePattern p = tw_prune_single(w, options);
    for (const auto& tile : p.tiles) EXPECT_EQ(tile.kept_rows(), 32u);
    EXPECT_NEAR(p.sparsity(), 0.5, 0.05);
  }
  {
    MatrixF w = random_weights(32, 64, 8);
    TwPruneOptions options;
    options.target_sparsity = 0.5;
    options.g = 16;
    options.stages = 1;
    options.column_split = 0.0;  // rows only
    const TilePattern p = tw_prune_single(w, options);
    EXPECT_EQ(p.kept_columns(), 64u);
    EXPECT_NEAR(p.sparsity(), 0.5, 0.05);
  }
}

TEST(TwPruner, AprioriRunsAndStillHitsTarget) {
  MatrixF w = random_weights(64, 96, 9);
  TwPruneOptions options;
  options.target_sparsity = 0.7;
  options.g = 16;
  options.stages = 3;
  options.apriori = true;
  const TilePattern p = tw_prune_single(w, options);
  validate_pattern(p);
  EXPECT_NEAR(p.sparsity(), 0.7, 0.07);
}

TEST(TwPruner, FineTuneCallbackReceivesMasksEachStage) {
  MatrixF w = random_weights(32, 32, 10);
  TwPruneOptions options;
  options.target_sparsity = 0.5;
  options.g = 8;
  options.stages = 3;
  int calls = 0;
  tw_prune({&w}, options, {}, [&](const std::vector<MatrixU8>& masks) {
    ++calls;
    ASSERT_EQ(masks.size(), 1u);
    EXPECT_EQ(masks[0].rows(), 32u);
  });
  EXPECT_EQ(calls, 3);
}

TEST(TwPruner, ScoreFnOverridesMagnitude) {
  // A score function that protects the first column absolutely.
  MatrixF w = random_weights(32, 32, 11);
  TwPruneOptions options;
  options.target_sparsity = 0.9;
  options.g = 8;
  options.stages = 1;
  options.column_split = 1.0;
  const auto pattern = tw_prune_single(
      w, options, [](const MatrixF& weights, std::size_t) {
        MatrixF s(weights.rows(), weights.cols());
        for (std::size_t r = 0; r < s.rows(); ++r) s(r, 0) = 100.0f;
        return s;
      });
  EXPECT_EQ(pattern.col_keep[0], 1);
}

TEST(TwPruner, AtLeastOneColumnSurvives) {
  MatrixF w = random_weights(16, 16, 12);
  TwPruneOptions options;
  options.target_sparsity = 0.999;
  options.g = 4;
  options.stages = 1;
  const TilePattern p = tw_prune_single(w, options);
  EXPECT_GE(p.kept_columns(), 1u);
}

}  // namespace
}  // namespace tilesparse
