// Cross-request batching subsystem tests (serve/batch/ + exec row
// staging + nn batch entries).  The contracts proved here:
//
//   * RowStage gather/scatter round-trips rows exactly, and map_groups
//     carries group structure (seq -> pooled row) through batching.
//   * A batched wide-M run produces, row for row, exactly the bits
//     each member's solo run would have produced — for all five
//     registered weight formats (int8 included: activation
//     quantisation is per-row, so a row's bits never depend on its
//     co-travellers).
//   * Batch-of-one through the batching runtime == direct solo submit,
//     bit-identical.
//   * The linger window flushes on timer and, independently, on
//     reaching max_batch_m rows.
//   * One member expiring (or poisoning the batch) cannot take its
//     co-travellers down: they still complete OK with their exact
//     solo results.
//   * TenantScheduler's deficit round robin gives a 10:1 offered-load
//     tenant pair ~1:1 *service* at equal weights.
//   * AdmissionQueue eviction prefers the tenant flooding the queue.
//   * Per-tenant Stats obey the same conservation identity as the
//     global Stats.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "exec/backend_registry.hpp"
#include "exec/batch_entry.hpp"
#include "exec/exec_context.hpp"
#include "exec/row_stage.hpp"
#include "exec/scheduler.hpp"
#include "nn/batch_entry.hpp"
#include "nn/bert_mini.hpp"
#include "prune/importance.hpp"
#include "prune/tw_pruner.hpp"
#include "serve/admission_queue.hpp"
#include "serve/batch/tenant_scheduler.hpp"
#include "serve/serving_runtime.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "workload/datasets.hpp"

namespace tilesparse::serve {
namespace {

using namespace std::chrono_literals;

MatrixF random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  MatrixF m(rows, cols);
  fill_normal(m, rng);
  return m;
}

bool bit_identical(const MatrixF& a, const MatrixF& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  return a.size() == 0 ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

/// Packs `w` under `format`, supplying a TW pattern where required.
std::unique_ptr<PackedWeight> pack_for_batch_test(const std::string& format,
                                                  const MatrixF& w,
                                                  std::size_t g) {
  const MatrixF scores = magnitude_scores(w);
  const TilePattern pattern = tw_pattern_from_scores(scores, 0.6, g);
  PackOptions options;
  options.pattern = &pattern;
  options.scores = &scores;
  options.tew_delta = 0.05;
  return make_packed(format, w, options);
}

const std::vector<std::string> kAllFormats{"dense", "tw", "tew", "csr",
                                           "tw-int8"};

// ------------------------------------------------------------- RowStage

TEST(RowStageTest, GatherScatterRoundTrips) {
  const MatrixF a = random_matrix(2, 4, 1);
  const MatrixF b = random_matrix(3, 4, 2);
  const MatrixF c = random_matrix(1, 4, 3);
  RowStage stage;
  const MatrixF& staged = stage.gather({&a, &b, &c});
  ASSERT_EQ(staged.rows(), 6u);
  ASSERT_EQ(staged.cols(), 4u);
  ASSERT_EQ(stage.slices().size(), 3u);
  EXPECT_EQ(stage.slices()[1].row0, 2u);
  EXPECT_EQ(stage.slices()[1].rows, 3u);
  EXPECT_TRUE(bit_identical(RowStage::scatter(staged, stage.slices()[0]), a));
  EXPECT_TRUE(bit_identical(RowStage::scatter(staged, stage.slices()[1]), b));
  EXPECT_TRUE(bit_identical(RowStage::scatter(staged, stage.slices()[2]), c));
}

TEST(RowStageTest, ReusableAcrossFlushesAndValidates) {
  RowStage stage;
  const MatrixF big = random_matrix(32, 8, 4);
  stage.gather({&big});
  EXPECT_EQ(stage.staged().rows(), 32u);
  const MatrixF small = random_matrix(2, 8, 5);
  // Second flush shrinks the staged view without reallocating bigger.
  const MatrixF& staged = stage.gather({&small});
  EXPECT_EQ(staged.rows(), 2u);
  EXPECT_TRUE(bit_identical(RowStage::scatter(staged, {0, 2}), small));

  EXPECT_THROW(stage.gather({}), std::invalid_argument);
  const MatrixF wrong_cols = random_matrix(2, 4, 6);
  EXPECT_THROW(stage.gather({&small, &wrong_cols}), std::invalid_argument);
  EXPECT_THROW(RowStage::scatter(staged, {1, 5}), std::invalid_argument);
}

TEST(RowStageTest, MapGroupsCarriesSequenceStructure) {
  // 16 input rows per sequence contract to 1 pooled output row.
  const RowStage::Slice out = RowStage::map_groups({32, 16}, 16, 1);
  EXPECT_EQ(out.row0, 2u);
  EXPECT_EQ(out.rows, 1u);
  const RowStage::Slice identity = RowStage::map_groups({3, 5}, 1, 1);
  EXPECT_EQ(identity.row0, 3u);
  EXPECT_EQ(identity.rows, 5u);
  EXPECT_THROW(RowStage::map_groups({3, 16}, 16, 1), std::invalid_argument);
  EXPECT_THROW(RowStage::map_groups({16, 9}, 16, 1), std::invalid_argument);
}

// ------------------------------------------------- GraphBatchEntry core

TEST(GraphBatchEntryTest, BatchedRowsBitIdenticalToSoloAllFormats) {
  const MatrixF w = random_matrix(48, 96, 11);
  ExecScheduler scheduler;
  for (const std::string& format : kAllFormats) {
    const auto packed = pack_for_batch_test(format, w, 16);
    const auto entry = make_gemm_entry("e-" + format, packed.get());
    std::vector<MatrixF> inputs;
    inputs.push_back(random_matrix(6, 48, 21));
    inputs.push_back(random_matrix(12, 48, 22));
    inputs.push_back(random_matrix(6, 48, 23));
    std::vector<MatrixF> solo;
    for (const MatrixF& in : inputs) solo.push_back(entry->run(scheduler, in));

    RowStage stage;
    const MatrixF& staged =
        stage.gather({&inputs[0], &inputs[1], &inputs[2]});
    const MatrixF batched = entry->run(scheduler, staged);
    ASSERT_EQ(batched.rows(), 24u) << format;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      const MatrixF slice = RowStage::scatter(batched, stage.slices()[i]);
      EXPECT_TRUE(bit_identical(slice, solo[i]))
          << format << " member " << i
          << ": batched rows differ from solo run";
    }
  }
}

TEST(GraphBatchEntryTest, KeepsMKeyedGraphCache) {
  const MatrixF w = random_matrix(16, 32, 12);
  const auto packed = pack_for_batch_test("dense", w, 16);
  GraphBatchEntry::Config config;
  config.name = "cached";
  config.input_cols = 16;
  config.output_cols = 32;
  config.graph_cache_capacity = 2;
  config.builder = [&packed](ExecGraph& g, ExecGraph::SlotId in, std::size_t) {
    const auto out = g.add_slot("out");
    g.add_gemm("gemm", packed.get(), in, out);
    return out;
  };
  GraphBatchEntry entry(std::move(config));
  ExecScheduler scheduler;
  const MatrixF reference = entry.run(scheduler, random_matrix(6, 16, 31));
  entry.run(scheduler, random_matrix(12, 16, 32));
  EXPECT_EQ(entry.cached_graphs(), 2u);
  // Re-running an already-cached M must not grow the cache...
  entry.run(scheduler, random_matrix(6, 16, 33));
  EXPECT_EQ(entry.cached_graphs(), 2u);
  // ...and new Ms evict LRU instead of growing past capacity.
  entry.run(scheduler, random_matrix(18, 16, 34));
  entry.run(scheduler, random_matrix(24, 16, 35));
  EXPECT_EQ(entry.cached_graphs(), 2u);
  // An evicted-and-rebuilt M still computes the same bits.
  EXPECT_TRUE(bit_identical(entry.run(scheduler, random_matrix(6, 16, 31)),
                            reference));
}

TEST(GraphBatchEntryTest, RejectsMisshapenInput) {
  const MatrixF w = random_matrix(16, 32, 13);
  const auto packed = pack_for_batch_test("dense", w, 16);
  GraphBatchEntry::Config config;
  config.name = "grouped";
  config.input_cols = 16;
  config.output_cols = 32;
  config.group_rows_in = 4;
  config.builder = [&packed](ExecGraph& g, ExecGraph::SlotId in, std::size_t) {
    const auto out = g.add_slot("out");
    g.add_gemm("gemm", packed.get(), in, out);
    return out;
  };
  GraphBatchEntry entry(std::move(config));
  ExecScheduler scheduler;
  EXPECT_THROW(entry.run(scheduler, MatrixF(0, 16)), std::invalid_argument);
  EXPECT_THROW(entry.run(scheduler, random_matrix(6, 16, 1)),
               std::invalid_argument);  // not a multiple of group_rows_in
  EXPECT_THROW(entry.run(scheduler, random_matrix(4, 8, 1)),
               std::invalid_argument);  // wrong cols
  EXPECT_NO_THROW(entry.run(scheduler, random_matrix(8, 16, 1)));
}

TEST(BertBatchEntryTest, BatchedSequencesMatchSoloBitIdentical) {
  BertMiniConfig config;
  config.dim = 32;
  config.heads = 2;
  config.layers = 1;
  config.ffn_dim = 64;
  config.seq = 8;
  config.classes = 3;
  const MatrixF table = random_matrix(50, config.dim, 41);
  BertMini model(config, table);
  const auto entry = make_bert_entry("bert", model);
  EXPECT_EQ(entry->group_rows_in(), config.seq);
  EXPECT_EQ(entry->group_rows_out(), 1u);
  EXPECT_GT(entry->cost(config.seq), 0.0);

  TokenBatch tokens_a;
  tokens_a.batch = 1;
  tokens_a.seq = config.seq;
  TokenBatch tokens_b = tokens_a;
  for (std::size_t t = 0; t < config.seq; ++t) {
    tokens_a.tokens.push_back(static_cast<int>(t % 50));
    tokens_b.tokens.push_back(static_cast<int>((3 * t + 7) % 50));
  }
  const MatrixF embed_a = model.embed(tokens_a);
  const MatrixF embed_b = model.embed(tokens_b);

  ExecScheduler scheduler;
  const MatrixF solo_a = entry->run(scheduler, embed_a);
  const MatrixF solo_b = entry->run(scheduler, embed_b);
  ASSERT_EQ(solo_a.rows(), 1u);
  ASSERT_EQ(solo_a.cols(), config.classes);

  RowStage stage;
  const MatrixF& staged = stage.gather({&embed_a, &embed_b});
  const MatrixF batched = entry->run(scheduler, staged);
  ASSERT_EQ(batched.rows(), 2u);
  const RowStage::Slice out_a =
      RowStage::map_groups(stage.slices()[0], config.seq, 1);
  const RowStage::Slice out_b =
      RowStage::map_groups(stage.slices()[1], config.seq, 1);
  EXPECT_TRUE(bit_identical(RowStage::scatter(batched, out_a), solo_a));
  EXPECT_TRUE(bit_identical(RowStage::scatter(batched, out_b), solo_b));
}

// ------------------------------------------------------ TenantScheduler

BatchMember member_for(const std::string& tenant, std::size_t rows,
                       double cost) {
  BatchMember member;
  member.tenant = tenant;
  member.input = MatrixF(rows, 4);
  member.cost = cost;
  member.arrival = Clock::now();
  return member;
}

TEST(TenantSchedulerTest, TenToOneOfferedLoadGetsEqualService) {
  BatchPolicy policy;
  TenantScheduler scheduler(&policy);
  // 10:1 offered load, equal weights, equal per-member cost.
  for (int i = 0; i < 100; ++i)
    scheduler.enqueue(member_for("heavy", 1, 1.0));
  for (int i = 0; i < 10; ++i) scheduler.enqueue(member_for("light", 1, 1.0));

  // While BOTH tenants stay backlogged, service must track 1:1.
  std::vector<BatchMember> expired;
  double heavy_backlogged = 0.0, light_backlogged = 0.0;
  while (true) {
    const auto batch = scheduler.select(4, Clock::now(), expired);
    ASSERT_FALSE(batch.empty());
    heavy_backlogged = scheduler.served_cost("heavy");
    light_backlogged = scheduler.served_cost("light");
    if (light_backlogged >= 10.0) break;  // light's queue just drained
  }
  EXPECT_TRUE(expired.empty());
  EXPECT_NEAR(heavy_backlogged, light_backlogged, 4.0)
      << "DRR service diverged while both tenants were backlogged";

  // Once light is empty, heavy absorbs the whole budget again.
  while (scheduler.pending_members() > 0) {
    const auto batch = scheduler.select(8, Clock::now(), expired);
    ASSERT_FALSE(batch.empty());
  }
  EXPECT_DOUBLE_EQ(scheduler.served_cost("heavy"), 100.0);
  EXPECT_DOUBLE_EQ(scheduler.served_cost("light"), 10.0);
}

TEST(TenantSchedulerTest, WeightsSkewService) {
  BatchPolicy policy;
  policy.tenant_weights["gold"] = 3.0;
  TenantScheduler scheduler(&policy);
  for (int i = 0; i < 60; ++i) {
    scheduler.enqueue(member_for("gold", 1, 1.0));
    scheduler.enqueue(member_for("bronze", 1, 1.0));
  }
  std::vector<BatchMember> expired;
  std::size_t selected = 0;
  while (selected < 40) selected += scheduler.select(4, Clock::now(), expired).size();
  const double gold = scheduler.served_cost("gold");
  const double bronze = scheduler.served_cost("bronze");
  EXPECT_GT(gold, 2.0 * bronze) << "weight 3 tenant should get ~3x service";
}

TEST(TenantSchedulerTest, OversizeMemberAdmittedAloneNotStarved) {
  BatchPolicy policy;
  TenantScheduler scheduler(&policy);
  scheduler.enqueue(member_for("t", 100, 50.0));  // wider than any batch
  std::vector<BatchMember> expired;
  const auto batch = scheduler.select(8, Clock::now(), expired);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].input.rows(), 100u);
  EXPECT_TRUE(scheduler.empty());
}

TEST(TenantSchedulerTest, ExpiredMembersAreHandedBackNotSelected) {
  BatchPolicy policy;
  TenantScheduler scheduler(&policy);
  BatchMember dead = member_for("t", 2, 1.0);
  dead.deadline = Clock::now() - 1ms;
  dead.tag = "dead";
  scheduler.enqueue(std::move(dead));
  scheduler.enqueue(member_for("t", 2, 1.0));
  std::vector<BatchMember> expired;
  const auto batch = scheduler.select(8, Clock::now(), expired);
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].tag, "dead");
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_TRUE(scheduler.empty());
}

// ------------------------------------- AdmissionQueue tenant eviction

TEST(AdmissionQueueTenantTest, EvictsNewestEntryOfMostQueuedTenant) {
  AdmissionQueue<int> q(4);
  int evicted = -1;
  EXPECT_EQ(q.push(1, Priority::kNormal, nullptr, "noisy"),
            PushOutcome::kAdmitted);
  EXPECT_EQ(q.push(2, Priority::kNormal, nullptr, "noisy"),
            PushOutcome::kAdmitted);
  EXPECT_EQ(q.push(3, Priority::kNormal, nullptr, "quiet"),
            PushOutcome::kAdmitted);
  EXPECT_EQ(q.push(4, Priority::kNormal, nullptr, "noisy"),
            PushOutcome::kAdmitted);
  EXPECT_EQ(q.tenant_depth("noisy"), 3u);
  // Full queue + higher-priority arrival: the victim is the NEWEST
  // entry of the tenant with the highest in-queue count (noisy, 3 > 1),
  // not the globally newest and not quiet's entry.
  EXPECT_EQ(q.push(9, Priority::kInteractive, &evicted, "vip"),
            PushOutcome::kAdmittedAfterEvict);
  EXPECT_EQ(evicted, 4);
  EXPECT_EQ(q.tenant_depth("noisy"), 2u);
  EXPECT_EQ(q.tenant_depth("quiet"), 1u);
}

TEST(AdmissionQueueTenantTest, MostQueuedTenantWinsEvenWhenNotNewest) {
  AdmissionQueue<int> q(3);
  int evicted = -1;
  q.push(1, Priority::kNormal, nullptr, "noisy");
  q.push(2, Priority::kNormal, nullptr, "noisy");
  q.push(3, Priority::kNormal, nullptr, "quiet");  // globally newest
  EXPECT_EQ(q.push(9, Priority::kInteractive, &evicted),
            PushOutcome::kAdmittedAfterEvict);
  EXPECT_EQ(evicted, 2);  // noisy's newest, though quiet's is newer
}

TEST(AdmissionQueueTenantTest, AnonymousTrafficFallsBackToPlainNewest) {
  AdmissionQueue<int> q(3);
  int evicted = -1;
  q.push(1, Priority::kNormal);
  q.push(2, Priority::kNormal);
  q.push(3, Priority::kNormal);
  EXPECT_EQ(q.push(9, Priority::kInteractive, &evicted),
            PushOutcome::kAdmittedAfterEvict);
  EXPECT_EQ(evicted, 3);  // pre-tenant behavior preserved
  EXPECT_EQ(q.tenant_depth("anyone"), 0u);
}

TEST(AdmissionQueueTenantTest, PopAndDrainKeepTenantCountsConsistent) {
  AdmissionQueue<int> q(4);
  q.push(1, Priority::kNormal, nullptr, "a");
  q.push(2, Priority::kInteractive, nullptr, "a");
  q.push(3, Priority::kBatch, nullptr, "b");
  EXPECT_EQ(q.tenant_depth("a"), 2u);
  int out = 0;
  ASSERT_TRUE(q.try_pop(out));  // pops the interactive entry (tenant a)
  EXPECT_EQ(out, 2);
  EXPECT_EQ(q.tenant_depth("a"), 1u);
  const auto drained = q.close_and_drain();
  EXPECT_EQ(drained.size(), 2u);
  EXPECT_EQ(q.tenant_depth("a"), 0u);
  EXPECT_EQ(q.tenant_depth("b"), 0u);
}

// --------------------------------------------- runtime end-to-end paths

Request batch_request(const std::string& entry, MatrixF input,
                      std::string tenant, std::string tag,
                      Priority priority = Priority::kNormal) {
  Request request;
  request.priority = priority;
  request.entry = entry;
  request.input = std::move(input);
  request.tenant_id = std::move(tenant);
  request.tag = std::move(tag);
  return request;
}

TEST(ServeBatchTest, BatchOfOneMatchesDirectSubmitBitIdentical) {
  const MatrixF w = random_matrix(48, 96, 51);
  const auto packed = pack_for_batch_test("dense", w, 16);
  const MatrixF input = random_matrix(6, 48, 52);

  auto run_with = [&](bool enabled) {
    ServingOptions options;
    options.workers = 2;
    options.batch.enabled = enabled;
    options.batch.max_linger = 20ms;
    ServingRuntime runtime(options);
    runtime.register_batch_entry(make_gemm_entry("gemm", packed.get()));
    auto handle = runtime.submit(batch_request("gemm", input, "t", "one"));
    const Response response = handle->wait();
    runtime.shutdown();
    EXPECT_TRUE(runtime.stats().conserved());
    return response;
  };

  const Response batched = run_with(true);
  const Response solo = run_with(false);
  ASSERT_EQ(batched.status, RequestStatus::kOk) << batched.error;
  ASSERT_EQ(solo.status, RequestStatus::kOk) << solo.error;
  EXPECT_TRUE(batched.batched);
  EXPECT_FALSE(solo.batched);
  EXPECT_EQ(batched.batch_rows, 6u);
  EXPECT_TRUE(bit_identical(batched.result, solo.result));
  EXPECT_TRUE(bit_identical(batched.result,
                            packed->matmul(ExecContext{}, input)));
}

TEST(ServeBatchTest, BatchedWideMBitIdenticalToSoloAllFormats) {
  const MatrixF w = random_matrix(48, 96, 53);
  for (const std::string& format : kAllFormats) {
    const auto packed = pack_for_batch_test(format, w, 16);
    std::vector<MatrixF> inputs;
    std::vector<MatrixF> references;
    for (std::size_t i = 0; i < 6; ++i) {
      inputs.push_back(random_matrix(6, 48, 60 + i));
      references.push_back(packed->matmul(ExecContext{}, inputs.back()));
    }

    ServingOptions options;
    options.workers = 2;
    options.batch.enabled = true;
    options.batch.max_linger = 200ms;  // wide window: coalesce the burst
    options.batch.max_batch_m = 1024;
    ServingRuntime runtime(options);
    runtime.register_batch_entry(make_gemm_entry(format, packed.get()));

    std::vector<RequestHandle> handles;
    for (std::size_t i = 0; i < inputs.size(); ++i) {
      handles.push_back(runtime.submit(batch_request(
          format, inputs[i], "tenant-" + std::to_string(i % 2),
          format + "/" + std::to_string(i))));
    }
    for (std::size_t i = 0; i < handles.size(); ++i) {
      const Response& response = handles[i]->wait();
      ASSERT_EQ(response.status, RequestStatus::kOk)
          << format << " member " << i << ": " << response.error;
      EXPECT_TRUE(response.batched) << format << " member " << i;
      EXPECT_TRUE(bit_identical(response.result, references[i]))
          << format << " member " << i
          << ": batched result differs from solo execution";
    }
    runtime.shutdown();
    const auto stats = runtime.batch_stats();
    EXPECT_EQ(stats.batched_members, 6u) << format;
    EXPECT_EQ(stats.solo_fallback, 0u) << format;
    EXPECT_GE(stats.max_batch_rows, 12u)
        << format << ": burst never coalesced into a wide batch";
    EXPECT_TRUE(runtime.stats().conserved());
  }
}

TEST(ServeBatchTest, LingerWindowFlushesOnTimer) {
  const MatrixF w = random_matrix(48, 96, 54);
  const auto packed = pack_for_batch_test("dense", w, 16);
  ServingOptions options;
  options.workers = 2;
  options.batch.enabled = true;
  options.batch.max_linger = 80ms;
  options.batch.max_batch_m = 1024;  // never reached: only timer flushes
  ServingRuntime runtime(options);
  runtime.register_batch_entry(make_gemm_entry("gemm", packed.get()));

  const auto t0 = Clock::now();
  auto handle = runtime.submit(
      batch_request("gemm", random_matrix(6, 48, 55), "t", "lone"));
  const Response& response = handle->wait();
  const auto elapsed = Clock::now() - t0;
  ASSERT_EQ(response.status, RequestStatus::kOk) << response.error;
  EXPECT_TRUE(response.batched);
  // A lone member flushes when the linger window expires, not before.
  EXPECT_GE(elapsed, 40ms);
  runtime.shutdown();
  EXPECT_EQ(runtime.batch_stats().batches, 1u);
}

TEST(ServeBatchTest, MaxBatchRowsFlushesBeforeLingerExpires) {
  const MatrixF w = random_matrix(48, 96, 56);
  const auto packed = pack_for_batch_test("dense", w, 16);
  ServingOptions options;
  options.workers = 2;
  options.batch.enabled = true;
  options.batch.max_linger = 150ms;
  options.batch.max_batch_m = 12;  // two 6-row members fill a batch
  ServingRuntime runtime(options);
  runtime.register_batch_entry(make_gemm_entry("gemm", packed.get()));

  std::vector<RequestHandle> handles;
  std::vector<MatrixF> inputs;
  for (std::size_t i = 0; i < 4; ++i) {
    inputs.push_back(random_matrix(6, 48, 70 + i));
    handles.push_back(runtime.submit(
        batch_request("gemm", inputs.back(), "t", std::to_string(i))));
  }
  for (std::size_t i = 0; i < handles.size(); ++i) {
    const Response& response = handles[i]->wait();
    ASSERT_EQ(response.status, RequestStatus::kOk) << response.error;
    EXPECT_TRUE(bit_identical(response.result,
                              packed->matmul(ExecContext{}, inputs[i])));
    EXPECT_LE(response.batch_rows, 12u);
  }
  runtime.shutdown();
  const auto stats = runtime.batch_stats();
  EXPECT_GE(stats.batches, 2u);  // 24 rows cannot fit one 12-row batch
  EXPECT_LE(stats.max_batch_rows, 12u);
  EXPECT_TRUE(runtime.stats().conserved());
}

TEST(ServeBatchTest, MemberDeadlineExpiryLeavesCoTravellersOk) {
  const MatrixF w = random_matrix(48, 96, 57);
  const auto packed = pack_for_batch_test("dense", w, 16);
  ServingOptions options;
  options.workers = 2;
  options.batch.enabled = true;
  options.batch.max_linger = 300ms;
  options.batch.max_batch_m = 1024;
  options.batch.bypass_slack_factor = 0.0;  // force the doomed member in
  ServingRuntime runtime(options);
  runtime.register_batch_entry(make_gemm_entry("gemm", packed.get()));

  const MatrixF input_a = random_matrix(6, 48, 58);
  const MatrixF input_c = random_matrix(6, 48, 59);
  auto ok_a = runtime.submit(batch_request("gemm", input_a, "a", "a"));
  Request doomed = batch_request("gemm", random_matrix(6, 48, 60), "b", "b");
  doomed.deadline = Clock::now() + 20ms;  // expires inside the linger window
  auto dead_b = runtime.submit(std::move(doomed));
  auto ok_c = runtime.submit(batch_request("gemm", input_c, "c", "c"));

  const Response& response_b = dead_b->wait();
  EXPECT_EQ(response_b.status, RequestStatus::kTimeout);
  EXPECT_NE(response_b.error.find("batch"), std::string::npos)
      << response_b.error;
  const Response& response_a = ok_a->wait();
  const Response& response_c = ok_c->wait();
  ASSERT_EQ(response_a.status, RequestStatus::kOk) << response_a.error;
  ASSERT_EQ(response_c.status, RequestStatus::kOk) << response_c.error;
  EXPECT_TRUE(bit_identical(response_a.result,
                            packed->matmul(ExecContext{}, input_a)));
  EXPECT_TRUE(bit_identical(response_c.result,
                            packed->matmul(ExecContext{}, input_c)));
  runtime.shutdown();
  EXPECT_TRUE(runtime.stats().conserved());
  const auto tenants = runtime.tenant_stats();
  for (const auto& [tenant, stats] : tenants)
    EXPECT_TRUE(stats.conserved()) << "tenant " << tenant;
  EXPECT_EQ(tenants.at("b").timeout, 1u);
  EXPECT_EQ(tenants.at("a").ok, 1u);
  EXPECT_EQ(tenants.at("c").ok, 1u);
}

/// An entry that throws whenever the poison marker rides in the batch —
/// the "one bad member" isolation scenario.
class PoisonEntry : public BatchEntry {
 public:
  static constexpr float kMarker = 1.0e7f;

  const std::string& name() const noexcept override { return name_; }
  std::size_t input_cols() const noexcept override { return 4; }
  std::size_t output_cols() const noexcept override { return 4; }
  MatrixF run(ExecScheduler&, const MatrixF& input) override {
    for (float v : input.flat())
      if (v >= kMarker) throw std::runtime_error("poisoned member");
    MatrixF out(input.rows(), input.cols());
    for (std::size_t i = 0; i < input.size(); ++i)
      out.data()[i] = 2.0f * input.data()[i];
    return out;
  }
  double macs(std::size_t rows) const noexcept override {
    return static_cast<double>(rows);
  }
  std::size_t weight_bytes() const noexcept override { return 4; }

 private:
  std::string name_ = "poison";
};

TEST(ServeBatchTest, PoisonedMemberFailsAloneCoTravellersStillOk) {
  ServingOptions options;
  options.workers = 2;
  options.batch.enabled = true;
  options.batch.max_linger = 150ms;
  options.batch.max_batch_m = 1024;
  ServingRuntime runtime(options);
  runtime.register_batch_entry(std::make_shared<PoisonEntry>());

  const MatrixF good_a = random_matrix(2, 4, 61);
  const MatrixF good_c = random_matrix(3, 4, 62);
  MatrixF bad(1, 4);
  bad(0, 0) = PoisonEntry::kMarker;
  auto ok_a = runtime.submit(batch_request("poison", good_a, "a", "a"));
  auto fail_b = runtime.submit(batch_request("poison", bad, "b", "b"));
  auto ok_c = runtime.submit(batch_request("poison", good_c, "c", "c"));

  const Response& response_b = fail_b->wait();
  EXPECT_EQ(response_b.status, RequestStatus::kFailed);
  EXPECT_NE(response_b.error.find("poison"), std::string::npos);
  for (const auto& [handle, good] :
       {std::pair{&ok_a, &good_a}, std::pair{&ok_c, &good_c}}) {
    const Response& response = (*handle)->wait();
    ASSERT_EQ(response.status, RequestStatus::kOk) << response.error;
    MatrixF expected(good->rows(), good->cols());
    for (std::size_t i = 0; i < expected.size(); ++i)
      expected.data()[i] = 2.0f * good->data()[i];
    EXPECT_TRUE(bit_identical(response.result, expected));
  }
  runtime.shutdown();
  EXPECT_TRUE(runtime.stats().conserved());
  for (const auto& [tenant, stats] : runtime.tenant_stats())
    EXPECT_TRUE(stats.conserved()) << "tenant " << tenant;
}

TEST(ServeBatchTest, PerTenantAccountingConservesAndTracksBatchedCost) {
  const MatrixF w = random_matrix(48, 96, 63);
  const auto packed = pack_for_batch_test("tw", w, 16);
  ServingOptions options;
  options.workers = 2;
  options.batch.enabled = true;
  options.batch.max_linger = 50ms;
  ServingRuntime runtime(options);
  runtime.register_batch_entry(make_gemm_entry("gemm", packed.get()));

  std::vector<RequestHandle> handles;
  for (int i = 0; i < 4; ++i)
    handles.push_back(runtime.submit(batch_request(
        "gemm", random_matrix(6, 48, 80 + i), "alpha", "a")));
  for (int i = 0; i < 2; ++i)
    handles.push_back(runtime.submit(batch_request(
        "gemm", random_matrix(6, 48, 90 + i), "beta", "b")));
  // A classic (non-batchable) request billed to alpha rides alongside.
  Request classic;
  classic.tenant_id = "alpha";
  classic.work = [](WorkerContext&) { return MatrixF(1, 1); };
  handles.push_back(runtime.submit(std::move(classic)));

  for (auto& handle : handles)
    EXPECT_EQ(handle->wait().status, RequestStatus::kOk);
  runtime.shutdown();
  const auto tenants = runtime.tenant_stats();
  ASSERT_EQ(tenants.count("alpha"), 1u);
  ASSERT_EQ(tenants.count("beta"), 1u);
  EXPECT_TRUE(tenants.at("alpha").conserved());
  EXPECT_TRUE(tenants.at("beta").conserved());
  EXPECT_EQ(tenants.at("alpha").ok, 5u);
  EXPECT_EQ(tenants.at("alpha").batched_ok, 4u);
  EXPECT_EQ(tenants.at("beta").ok, 2u);
  EXPECT_EQ(tenants.at("beta").batched_ok, 2u);
  EXPECT_GT(tenants.at("alpha").cost_ok, tenants.at("beta").cost_ok);
  EXPECT_GT(tenants.at("beta").cost_ok, 0.0);
}

TEST(ServeBatchTest, CancelShutdownTimesOutQueuedMembersConserved) {
  const MatrixF w = random_matrix(48, 96, 64);
  const auto packed = pack_for_batch_test("dense", w, 16);
  ServingOptions options;
  options.workers = 1;  // a lone leader lingers while the rest queue up
  options.batch.enabled = true;
  options.batch.max_linger = 10s;
  options.batch.max_batch_m = 1024;
  ServingRuntime runtime(options);
  runtime.register_batch_entry(make_gemm_entry("gemm", packed.get()));

  std::vector<RequestHandle> handles;
  for (int i = 0; i < 4; ++i)
    handles.push_back(runtime.submit(batch_request(
        "gemm", random_matrix(6, 48, 100 + i), "t", std::to_string(i))));
  std::this_thread::sleep_for(20ms);  // let the worker become a leader
  runtime.shutdown(ServingRuntime::Shutdown::kCancel);
  for (auto& handle : handles) {
    ASSERT_TRUE(handle->done());
    const auto status = handle->response().status;
    EXPECT_TRUE(status == RequestStatus::kTimeout ||
                status == RequestStatus::kOk ||
                status == RequestStatus::kRejected)
        << status_name(status);
  }
  EXPECT_TRUE(runtime.stats().conserved());
  for (const auto& [tenant, stats] : runtime.tenant_stats())
    EXPECT_TRUE(stats.conserved()) << "tenant " << tenant;
}

TEST(ServeBatchTest, SubmitValidatesBatchableRequests) {
  const MatrixF w = random_matrix(48, 96, 65);
  const auto packed = pack_for_batch_test("dense", w, 16);
  ServingOptions options;
  options.batch.enabled = true;
  ServingRuntime runtime(options);
  runtime.register_batch_entry(make_gemm_entry("gemm", packed.get()));

  // Unknown entry name.
  EXPECT_THROW(
      runtime.submit(batch_request("nope", random_matrix(6, 48, 1), "", "")),
      std::invalid_argument);
  // Wrong input width.
  EXPECT_THROW(
      runtime.submit(batch_request("gemm", random_matrix(6, 32, 1), "", "")),
      std::invalid_argument);
  // Empty input.
  EXPECT_THROW(runtime.submit(batch_request("gemm", MatrixF(0, 48), "", "")),
               std::invalid_argument);
  // Both opaque work and a batchable entry.
  Request both = batch_request("gemm", random_matrix(6, 48, 1), "", "");
  both.work = [](WorkerContext&) { return MatrixF(1, 1); };
  EXPECT_THROW(runtime.submit(std::move(both)), std::invalid_argument);
  // Neither.
  EXPECT_THROW(runtime.submit(Request{}), std::invalid_argument);
  runtime.shutdown();
  EXPECT_TRUE(runtime.stats().conserved());
}

}  // namespace
}  // namespace tilesparse::serve
