// Parameterized property suites sweeping the main invariants across the
// configuration space: TW pattern validity/sparsity across granularities
// and splits, masked-GEMM correctness across random tile configurations,
// batch-group coverage, latency-model monotonicity across G, and the
// TEW sparsity identity across deltas.

#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "core/tew.hpp"
#include "core/tile_exec.hpp"
#include "gemm/dense_gemm.hpp"
#include "prune/importance.hpp"
#include "prune/tw_pruner.hpp"
#include "sim/gemm_model.hpp"
#include "sim/tw_model.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace tilesparse {
namespace {

MatrixF random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  MatrixF m(rows, cols);
  fill_normal(m, rng);
  return m;
}

// ---------------------------------------------------------- TW patterns

class TwPatternSweep
    : public ::testing::TestWithParam<std::tuple<std::size_t, double, double>> {};

TEST_P(TwPatternSweep, ValidAndOnTarget) {
  const auto [g, sparsity, split] = GetParam();
  const MatrixF w = random_matrix(96, 160, g * 1000 + 7);
  const TilePattern p =
      tw_pattern_from_scores(magnitude_scores(w), sparsity, g, split);
  validate_pattern(p);
  EXPECT_NEAR(p.sparsity(), sparsity, 0.07)
      << "g=" << g << " s=" << sparsity << " split=" << split;
  for (const auto& tile : p.tiles) EXPECT_LE(tile.width(), g);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, TwPatternSweep,
    ::testing::Combine(::testing::Values(std::size_t{8}, std::size_t{16},
                                         std::size_t{32}, std::size_t{64}),
                       ::testing::Values(0.3, 0.6, 0.9),
                       ::testing::Values(0.25, 0.5, 0.75)));

TEST(TwPatternProperty, EveryColumnInExactlyOneTileOrPruned) {
  const MatrixF w = random_matrix(64, 100, 3);
  const TilePattern p = tw_pattern_from_scores(magnitude_scores(w), 0.5, 24);
  std::set<std::int32_t> seen;
  for (const auto& tile : p.tiles)
    for (auto c : tile.out_cols) EXPECT_TRUE(seen.insert(c).second);
  std::size_t kept = 0;
  for (auto k : p.col_keep) kept += k != 0;
  EXPECT_EQ(seen.size(), kept);
}

TEST(TwPatternProperty, SparsityMonotoneInTarget) {
  const MatrixF scores = magnitude_scores(random_matrix(80, 120, 4));
  double previous = -1.0;
  for (double s : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double achieved = tw_pattern_from_scores(scores, s, 16).sparsity();
    EXPECT_GT(achieved, previous);
    previous = achieved;
  }
}

// ------------------------------------------------------- masked GEMM

class MaskedGemmSweep
    : public ::testing::TestWithParam<std::tuple<double, std::size_t>> {};

TEST_P(MaskedGemmSweep, MatchesDenseOnPrunedWeights) {
  const auto [sparsity, g] = GetParam();
  MatrixF w = random_matrix(64, 96, 17);
  const TilePattern p =
      tw_pattern_from_scores(magnitude_scores(w), sparsity, g);
  apply_pattern(p, w);
  const auto tiles = compact_tiles(w, p);
  const MatrixF a = random_matrix(13, 64, 18);
  const MatrixF c = tw_matmul(a, tiles, 96);
  EXPECT_LT(max_abs_diff(c, matmul_reference(a, w)), 1e-3f)
      << "s=" << sparsity << " g=" << g;
}

INSTANTIATE_TEST_SUITE_P(
    Grid, MaskedGemmSweep,
    ::testing::Combine(::testing::Values(0.0, 0.25, 0.5, 0.75, 0.95),
                       ::testing::Values(std::size_t{8}, std::size_t{32})));

// ------------------------------------------------------- batch groups

TEST(BatchGroupProperty, CoversEveryTileExactlyOnce) {
  const MatrixF w = random_matrix(64, 144, 21);
  const TilePattern p = tw_pattern_from_scores(magnitude_scores(w), 0.4, 32);
  const auto groups = build_batch_groups(p);
  std::set<std::size_t> seen;
  for (const auto& group : groups) {
    ASSERT_EQ(group.tile_ids.size(), group.kept_rows.size());
    for (std::size_t id : group.tile_ids) {
      EXPECT_TRUE(seen.insert(id).second);
      EXPECT_EQ(p.tiles[id].width(), group.width);
    }
  }
  EXPECT_EQ(seen.size(), p.tiles.size());
}

TEST(BatchGroupProperty, WidthsStrictlyDecreasing) {
  const MatrixF w = random_matrix(32, 200, 22);
  const TilePattern p = tw_pattern_from_scores(magnitude_scores(w), 0.6, 48);
  const auto groups = build_batch_groups(p);
  for (std::size_t i = 1; i < groups.size(); ++i)
    EXPECT_LT(groups[i].width, groups[i - 1].width);
}

// --------------------------------------------------------- TEW identity

class TewDeltaSweep : public ::testing::TestWithParam<double> {};

TEST_P(TewDeltaSweep, SparsityIdentity) {
  const double delta = GetParam();
  const MatrixF w = random_matrix(64, 96, 31);
  const MatrixF scores = magnitude_scores(w);
  const TilePattern p = tw_pattern_from_scores(scores, 0.85, 16);
  const TewMatrix tew = build_tew(w, p, scores, delta);
  // achieved = tw_sparsity - restored fraction (exact identity).
  EXPECT_NEAR(tew.sparsity(), p.sparsity() - tew.ew_fraction(), 1e-9);
  EXPECT_LE(tew.ew_fraction(), delta + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Deltas, TewDeltaSweep,
                         ::testing::Values(0.0, 0.01, 0.025, 0.05, 0.1, 0.15));

// --------------------------------------------------------- latency model

class TwModelGranularitySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TwModelGranularitySweep, MonotoneInSparsity) {
  const std::size_t g = GetParam();
  const DeviceModel dev = DeviceModel::v100();
  Rng rng(41);
  MatrixF scores(768, 3072);
  fill_uniform(scores, rng, 0.01f, 1.0f);
  double previous = 1e9;
  for (double s : {0.0, 0.3, 0.6, 0.9}) {
    const TilePattern p = tw_pattern_from_scores(scores, s, g);
    const double t = tw_gemm_latency(dev, 128, p).seconds();
    EXPECT_LE(t, previous * 1.02) << "g=" << g << " s=" << s;
    previous = t;
  }
}

INSTANTIATE_TEST_SUITE_P(Gs, TwModelGranularitySweep,
                         ::testing::Values(std::size_t{32}, std::size_t{64},
                                           std::size_t{128}));

TEST(TwModelProperty, CountersConsistent) {
  const DeviceModel dev = DeviceModel::v100();
  Rng rng(42);
  MatrixF scores(256, 512);
  fill_uniform(scores, rng, 0.01f, 1.0f);
  const TilePattern p = tw_pattern_from_scores(scores, 0.5, 64);
  const auto r = tw_gemm_latency(dev, 64, p);
  // Useful flops must equal 2 * M * kept work of the pattern.
  EXPECT_NEAR(r.useful_flops, 2.0 * p.macs(64), 1e-3);
  EXPECT_GT(r.load_bytes, 0.0);
  EXPECT_GT(r.store_bytes, 0.0);
  EXPECT_GT(r.seconds(), 0.0);
}

TEST(DenseModelProperty, UtilizationNeverAboveOne) {
  const DeviceModel dev = DeviceModel::v100();
  Rng rng(43);
  for (int i = 0; i < 50; ++i) {
    const auto m = 1 + rng.below(4096);
    const auto n = 1 + rng.below(4096);
    const double u = batch_utilization(dev, m, n, 1 + rng.below(16));
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
  }
}

TEST(DenseModelProperty, LatencyPositiveForRandomShapes) {
  const DeviceModel dev = DeviceModel::v100();
  Rng rng(44);
  for (int i = 0; i < 50; ++i) {
    const GemmShape shape{1 + rng.below(2048), 1 + rng.below(4096),
                          1 + rng.below(4096)};
    for (Core core : {Core::kTensor, Core::kCuda}) {
      const auto r = dense_gemm_latency(dev, shape, core);
      EXPECT_GT(r.seconds(), 0.0);
      EXPECT_GE(r.compute_s, 0.0);
      EXPECT_GE(r.memory_s, 0.0);
    }
  }
}

}  // namespace
}  // namespace tilesparse
