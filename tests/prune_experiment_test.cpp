#include <gtest/gtest.h>

#include "nn/prune_experiment.hpp"
#include "nn/param.hpp"

namespace tilesparse {
namespace {

// Shared pre-trained task for the suite (pre-training is the slow part).
class PruneExperimentTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    task_ = make_bert_cls_task(/*pretrain_steps=*/150).release();
    // Snapshot *all* parameters, not just the prunable weights: tests
    // fine-tune the model, which also moves biases/norms/embeddings,
    // and later tests (DenseSpecIsIdentity) need the exact pre-trained
    // state back.
    baseline_ = snapshot_params(task_->parameters());
    dense_metric_ = task_->evaluate();
  }
  static void TearDownTestSuite() {
    delete task_;
    task_ = nullptr;
  }
  void SetUp() override { restore_params(task_->parameters(), baseline_); }

  static PruneTask* task_;
  static std::vector<MatrixF> baseline_;
  static double dense_metric_;
};

PruneTask* PruneExperimentTest::task_ = nullptr;
std::vector<MatrixF> PruneExperimentTest::baseline_;
double PruneExperimentTest::dense_metric_ = 0.0;

TEST_F(PruneExperimentTest, DenseBaselineIsWellTrained) {
  EXPECT_GT(dense_metric_, 0.6);
}

TEST_F(PruneExperimentTest, EwAtModerateSparsityKeepsAccuracy) {
  PatternSpec spec;
  spec.kind = PatternKind::kEw;
  spec.sparsity = 0.5;
  const auto result = prune_and_evaluate(*task_, spec, 40);
  EXPECT_NEAR(result.achieved_sparsity, 0.5, 0.03);
  EXPECT_GT(result.metric, dense_metric_ - 0.12);
}

TEST_F(PruneExperimentTest, TwHitsTargetSparsity) {
  PatternSpec spec;
  spec.kind = PatternKind::kTw;
  spec.sparsity = 0.5;
  spec.g = 16;
  spec.stages = 2;
  const auto result = prune_and_evaluate(*task_, spec, 40);
  EXPECT_NEAR(result.achieved_sparsity, 0.5, 0.07);
  EXPECT_EQ(result.patterns.size(), task_->prunable().size());
  for (const auto& p : result.patterns) validate_pattern(p);
}

TEST_F(PruneExperimentTest, TewRestoresDeltaFraction) {
  PatternSpec spec;
  spec.kind = PatternKind::kTew;
  spec.sparsity = 0.5;
  spec.tew_delta = 0.05;
  spec.g = 16;
  spec.stages = 2;
  const auto result = prune_and_evaluate(*task_, spec, 40);
  EXPECT_NEAR(result.achieved_sparsity, 0.5, 0.07);
}

TEST_F(PruneExperimentTest, MasksMatchZeroedWeights) {
  PatternSpec spec;
  spec.kind = PatternKind::kVw;
  spec.sparsity = 0.5;
  spec.vector_len = 8;
  const auto result = prune_and_evaluate(*task_, spec, 20);
  const auto weights = task_->prunable();
  ASSERT_EQ(result.masks.size(), weights.size());
  for (std::size_t i = 0; i < weights.size(); ++i) {
    for (std::size_t j = 0; j < weights[i]->value.size(); ++j) {
      if (!result.masks[i].data()[j]) {
        EXPECT_EQ(weights[i]->value.data()[j], 0.0f);
      }
    }
  }
}

TEST_F(PruneExperimentTest, BwPrunesAtBlockGranularity) {
  PatternSpec spec;
  spec.kind = PatternKind::kBw;
  spec.sparsity = 0.5;
  spec.block = 8;
  const auto result = prune_and_evaluate(*task_, spec, 20);
  EXPECT_NEAR(result.achieved_sparsity, 0.5, 0.05);
}

TEST_F(PruneExperimentTest, DenseSpecIsIdentity) {
  PatternSpec spec;  // kDense
  const auto result = prune_and_evaluate(*task_, spec, 0);
  EXPECT_NEAR(result.metric, dense_metric_, 1e-9);
  EXPECT_EQ(result.achieved_sparsity, 0.0);
}

TEST(PatternNames, AllDistinct) {
  EXPECT_STREQ(pattern_name(PatternKind::kTw), "TW");
  EXPECT_STREQ(pattern_name(PatternKind::kTew), "TEW");
  EXPECT_STREQ(pattern_name(PatternKind::kEw), "EW");
  EXPECT_STREQ(pattern_name(PatternKind::kVw), "VW");
  EXPECT_STREQ(pattern_name(PatternKind::kBw), "BW");
  EXPECT_STREQ(pattern_name(PatternKind::kDense), "Dense");
}

}  // namespace
}  // namespace tilesparse
