// Cross-module integration: prune a weight matrix with the full TW
// pipeline, execute it on the CPU substrate, compare against dense GEMM
// on the pruned weights, and sanity-check the latency model against the
// *measured* CPU speedup trend (both must improve with sparsity).

#include <gtest/gtest.h>

#include "core/tew.hpp"
#include "core/tile_exec.hpp"
#include "gemm/dense_gemm.hpp"
#include "prune/importance.hpp"
#include "prune/tw_pruner.hpp"
#include "sim/gemm_model.hpp"
#include "sim/tw_model.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace tilesparse {
namespace {

TEST(Integration, PruneCompactExecuteMatchesDense) {
  Rng rng(1);
  MatrixF w(256, 384);
  fill_normal(w, rng);

  TwPruneOptions options;
  options.target_sparsity = 0.75;
  options.g = 64;
  options.stages = 3;
  const TilePattern pattern = tw_prune_single(w, options);
  validate_pattern(pattern);
  EXPECT_NEAR(pattern.sparsity(), 0.75, 0.06);

  // Compact the *pruned* weights: multi-stage patterns may re-admit
  // positions zeroed in earlier stages, so the original matrix is stale.
  const auto tiles = compact_tiles(w, pattern);
  MatrixF a(64, 256);
  fill_normal(a, rng);
  const MatrixF c_tw = tw_matmul(a, tiles, 384);
  const MatrixF c_dense = matmul(a, w);  // w holds the pruned weights
  EXPECT_LT(max_abs_diff(c_tw, c_dense), 1e-3f);
}

TEST(Integration, TewExecutionEqualsMaskedDense) {
  Rng rng(2);
  MatrixF w(128, 256);
  fill_normal(w, rng);
  const MatrixF scores = magnitude_scores(w);
  const TilePattern pattern = tw_pattern_from_scores(scores, 0.80, 32);
  const TewMatrix tew = build_tew(w, pattern, scores, 0.05);

  MatrixF a(32, 128);
  fill_normal(a, rng);
  const MatrixF c = tew_matmul(a, tew);
  const MatrixF ref = matmul(a, tew_to_dense(tew));
  EXPECT_LT(max_abs_diff(c, ref), 1e-3f);
}

TEST(Integration, MeasuredCpuTimeDropsWithSparsity) {
  // The substrate must show real skipped work: TW-75% masked GEMM should
  // run measurably faster than TW-0%.
  Rng rng(3);
  const std::size_t m = 256, k = 768, n = 768;
  MatrixF a(m, k);
  fill_normal(a, rng);
  MatrixF scores(k, n);
  fill_uniform(scores, rng, 0.01f, 1.0f);
  MatrixF w(k, n);
  fill_normal(w, rng);

  auto time_at = [&](double sparsity_level) {
    const TilePattern p = tw_pattern_from_scores(scores, sparsity_level, 128);
    const auto tiles = compact_tiles(w, p);
    MatrixF c(m, n);
    return time_best_of(
        [&] {
          c.fill(0.0f);
          masked_gemm_all(a, tiles, c);
        },
        3);
  };
  const double dense_time = time_at(0.0);
  const double sparse_time = time_at(0.75);
  EXPECT_LT(sparse_time, dense_time * 0.7);
}

TEST(Integration, ModelAndMeasurementAgreeOnTrend) {
  // Both the analytical model and the CPU substrate must rank
  // {0%, 50%, 90%} the same way.
  Rng rng(4);
  MatrixF scores(512, 512);
  fill_uniform(scores, rng, 0.01f, 1.0f);
  const DeviceModel dev = DeviceModel::v100();

  double prev_model = 1e30;
  for (double s : {0.0, 0.5, 0.9}) {
    const TilePattern p = tw_pattern_from_scores(scores, s, 64);
    const double model_time = tw_gemm_latency(dev, 128, p).seconds();
    EXPECT_LT(model_time, prev_model);
    prev_model = model_time;
  }
}

TEST(Integration, Fp16TwPathStaysAccurate) {
  Rng rng(5);
  MatrixF w(128, 128);
  fill_normal(w, rng, 0.0f, 0.1f);
  const TilePattern p =
      tw_pattern_from_scores(magnitude_scores(w), 0.5, 32);
  const auto tiles = compact_tiles(w, p);
  MatrixF a(16, 128);
  fill_normal(a, rng, 0.0f, 0.1f);
  const MatrixF c16 = tw_matmul(a, tiles, 128, /*fp16_inputs=*/true);
  MatrixF pruned = w;
  apply_pattern(p, pruned);
  const MatrixF ref = matmul(a, pruned);
  EXPECT_LT(max_abs_diff(c16, ref), 0.02f);
}

}  // namespace
}  // namespace tilesparse
