// Extended execution-model tests: the TPU/systolic projection (paper
// Sec. VIII), the hypothetical VW sparse tensor core (Zhu et al.), and
// the energy model.

#include <gtest/gtest.h>

#include "prune/tw_pruner.hpp"
#include "sim/gemm_model.hpp"
#include "sim/sparse_model.hpp"
#include "sim/systolic_model.hpp"
#include "sim/tw_model.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace tilesparse {
namespace {

const DeviceModel kDev = DeviceModel::v100();
const GemmShape kBertFfn{128, 3072, 768};

TilePattern tw_pattern(double sparsity, std::size_t g = 128) {
  Rng rng(1);
  MatrixF scores(768, 3072);
  fill_uniform(scores, rng, 0.01f, 1.0f);
  return tw_pattern_from_scores(scores, sparsity, g);
}

TEST(SystolicModel, PeakMacsMatchesArray) {
  const SystolicModel tpu = SystolicModel::tpu_v3();
  EXPECT_DOUBLE_EQ(tpu.peak_macs(), 128.0 * 128.0 * 940e6);
}

TEST(SystolicModel, DenseLatencyScalesWithPanels) {
  const SystolicModel tpu = SystolicModel::tpu_v3();
  const auto small = systolic_dense_latency(tpu, {128, 128, 128});
  const auto large = systolic_dense_latency(tpu, {128, 512, 128});
  EXPECT_GT(large.seconds(), 2.0 * small.seconds() - tpu.invoke_overhead_s);
}

TEST(SystolicModel, ArrayQuantisationPenalisesRaggedShapes) {
  const SystolicModel tpu = SystolicModel::tpu_v3();
  // 129 columns needs two N-panels: nearly the cost of 256.
  const auto ragged = systolic_dense_latency(tpu, {128, 129, 128});
  const auto full = systolic_dense_latency(tpu, {128, 256, 128});
  EXPECT_NEAR(ragged.seconds(), full.seconds(), full.seconds() * 0.05);
}

TEST(SystolicModel, TwSpeedsUpAtHighSparsityDespiteInterfaceLimits) {
  const SystolicModel tpu = SystolicModel::tpu_v3();
  const auto dense = systolic_dense_latency(tpu, kBertFfn);
  const auto tw75 = systolic_tw_latency(tpu, 128, tw_pattern(0.75));
  EXPECT_LT(tw75.seconds(), dense.seconds());
}

TEST(SystolicModel, G128MatchesArrayBetterThanG32) {
  // The paper's point: TW on a 128x128 systolic array wants G = 128;
  // smaller G wastes array columns on padding.
  const SystolicModel tpu = SystolicModel::tpu_v3();
  const auto g128 = systolic_tw_latency(tpu, 128, tw_pattern(0.75, 128));
  const auto g32 = systolic_tw_latency(tpu, 128, tw_pattern(0.75, 32));
  EXPECT_LE(g128.seconds(), g32.seconds() * 1.05);
}

TEST(SystolicModel, SerializedInvocationsPayPerGroupOverhead) {
  SystolicModel tpu = SystolicModel::tpu_v3();
  tpu.invoke_overhead_s = 100e-6;  // exaggerate to observe
  const auto tw = systolic_tw_latency(tpu, 128, tw_pattern(0.5));
  EXPECT_GE(tw.launch_s, 100e-6);
}

TEST(VwSparseTensorCore, Roughly1Point5xAt75Sparsity) {
  // The anchor the paper cites for Zhu et al.'s modified tensor core.
  const auto dense = dense_gemm_latency(kDev, kBertFfn, Core::kTensor);
  const auto vw = vw_sparse_tensor_core_latency(kDev, kBertFfn, 0.25);
  const double speedup = dense.seconds() / vw.seconds();
  EXPECT_GT(speedup, 1.2);
  EXPECT_LT(speedup, 2.0);
}

TEST(VwSparseTensorCore, SpeedupSaturates) {
  // The structured-sparse datapath has a work floor: going from 80% to
  // 99% sparsity cannot keep scaling like TW does.
  const auto at80 = vw_sparse_tensor_core_latency(kDev, kBertFfn, 0.20);
  const auto at99 = vw_sparse_tensor_core_latency(kDev, kBertFfn, 0.01);
  EXPECT_NEAR(at99.seconds(), at80.seconds(), at80.seconds() * 0.2);
}

TEST(EnergyModel, SparsitySavesEnergy) {
  const auto dense = dense_gemm_latency(kDev, kBertFfn, Core::kTensor);
  const auto tw75 = tw_gemm_latency(kDev, 128, tw_pattern(0.75));
  EXPECT_LT(tw75.energy_joules(kDev, Core::kTensor),
            dense.energy_joules(kDev, Core::kTensor));
}

TEST(EnergyModel, CudaCoreCostsMoreThanTensorCorePerFlop) {
  const auto tc = dense_gemm_latency(kDev, kBertFfn, Core::kTensor);
  const auto cc = dense_gemm_latency(kDev, kBertFfn, Core::kCuda);
  EXPECT_LT(tc.energy_joules(kDev, Core::kTensor),
            cc.energy_joules(kDev, Core::kCuda));
}

TEST(EnergyModel, EnergyIsPositiveAndFinite) {
  const auto r = dense_gemm_latency(kDev, {1, 1, 1}, Core::kTensor);
  const double e = r.energy_joules(kDev, Core::kTensor);
  EXPECT_GT(e, 0.0);
  EXPECT_TRUE(std::isfinite(e));
}

}  // namespace
}  // namespace tilesparse
