#include <gtest/gtest.h>

#include "gemm/masked_gemm.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace tilesparse {
namespace {

MatrixF random_matrix(std::size_t rows, std::size_t cols, std::uint64_t seed) {
  Rng rng(seed);
  MatrixF m(rows, cols);
  fill_normal(m, rng);
  return m;
}

/// Builds a random tile with the given kept rows / out columns.
MaskedTile make_tile(const std::vector<std::int32_t>& rows,
                     const std::vector<std::int32_t>& cols,
                     std::uint64_t seed) {
  MaskedTile tile;
  tile.kept_rows = rows;
  tile.out_cols = cols;
  tile.weights = random_matrix(rows.size(), cols.size(), seed);
  return tile;
}

TEST(MaskedGemm, GatherMatchesDenseEquivalent) {
  const MatrixF a = random_matrix(9, 12, 1);
  const auto tile = make_tile({0, 3, 5, 11}, {1, 2, 7}, 2);
  MatrixF c(9, 8);
  masked_gemm_gather(a, tile, c);
  const MatrixF dense_w = tiles_to_dense({tile}, 12, 8);
  const MatrixF ref = matmul_reference(a, dense_w);
  EXPECT_LT(max_abs_diff(c, ref), 1e-4f);
}

TEST(MaskedGemm, PackedMatchesGather) {
  const MatrixF a = random_matrix(70, 40, 3);
  const auto tile = make_tile({2, 4, 8, 16, 32, 39}, {0, 5, 10, 15}, 4);
  MatrixF c_gather(70, 16), c_packed(70, 16);
  masked_gemm_gather(a, tile, c_gather);
  masked_gemm_packed(a, tile, c_packed);
  EXPECT_LT(max_abs_diff(c_gather, c_packed), 1e-4f);
}

TEST(MaskedGemm, EmptyTileIsNoop) {
  const MatrixF a = random_matrix(4, 4, 5);
  MaskedTile tile;  // zero rows, zero cols
  MatrixF c(4, 4);
  masked_gemm_packed(a, tile, c);
  for (float v : c.flat()) EXPECT_EQ(v, 0.0f);
}

TEST(MaskedGemm, AccumulatesAcrossTiles) {
  const MatrixF a = random_matrix(10, 20, 6);
  // Two tiles covering disjoint output columns.
  const auto t1 = make_tile({0, 1, 2, 10, 19}, {0, 1, 2, 3}, 7);
  const auto t2 = make_tile({3, 4, 5}, {4, 5}, 8);
  MatrixF c(10, 6);
  masked_gemm_all(a, {t1, t2}, c);
  const MatrixF dense_w = tiles_to_dense({t1, t2}, 20, 6);
  const MatrixF ref = matmul_reference(a, dense_w);
  EXPECT_LT(max_abs_diff(c, ref), 1e-4f);
}

TEST(MaskedGemm, FullTileEqualsDenseGemm) {
  const std::size_t k = 16, n = 8, m = 12;
  std::vector<std::int32_t> all_rows(k), all_cols(n);
  for (std::size_t i = 0; i < k; ++i) all_rows[i] = static_cast<std::int32_t>(i);
  for (std::size_t i = 0; i < n; ++i) all_cols[i] = static_cast<std::int32_t>(i);
  const auto tile = make_tile(all_rows, all_cols, 9);
  const MatrixF a = random_matrix(m, k, 10);
  MatrixF c(m, n);
  masked_gemm_packed(a, tile, c);
  EXPECT_LT(max_abs_diff(c, matmul_reference(a, tile.weights)), 1e-4f);
}

TEST(MaskedGemm, Fp16PathStaysClose) {
  const MatrixF a = random_matrix(32, 64, 11);
  std::vector<std::int32_t> rows, cols;
  for (int i = 0; i < 64; i += 2) rows.push_back(i);
  for (int i = 0; i < 16; ++i) cols.push_back(i);
  const auto tile = make_tile(rows, cols, 12);
  MatrixF c32(32, 16), c16(32, 16);
  masked_gemm_packed(a, tile, c32, /*fp16_inputs=*/false);
  masked_gemm_packed(a, tile, c16, /*fp16_inputs=*/true);
  EXPECT_LT(max_abs_diff(c32, c16), 0.05f);
  EXPECT_GT(max_abs_diff(c32, c16), 0.0f);  // rounding did happen
}

TEST(TilesToDense, PlacesValuesAtOriginalPositions) {
  const auto tile = make_tile({1, 3}, {2}, 13);
  const MatrixF dense = tiles_to_dense({tile}, 4, 4);
  EXPECT_EQ(dense(1, 2), tile.weights(0, 0));
  EXPECT_EQ(dense(3, 2), tile.weights(1, 0));
  EXPECT_EQ(dense(0, 0), 0.0f);
  EXPECT_EQ(dense(2, 2), 0.0f);
}

}  // namespace
}  // namespace tilesparse
