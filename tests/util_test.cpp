#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <numeric>
#include <vector>

#include "util/rng.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"
#include "util/threadpool.hpp"

namespace tilesparse {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int differing = 0;
  for (int i = 0; i < 64; ++i) differing += (a() != b());
  EXPECT_GT(differing, 60);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const float u = rng.uniform();
    EXPECT_GE(u, 0.0f);
    EXPECT_LT(u, 1.0f);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const float u = rng.uniform(-3.0f, 5.0f);
    EXPECT_GE(u, -3.0f);
    EXPECT_LT(u, 5.0f);
  }
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(9);
  double sum = 0.0, sum_sq = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum_sq / n, 1.0, 0.03);
}

TEST(Rng, BelowStaysBelow) {
  Rng rng(10);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(RngShuffle, IsPermutation) {
  Rng rng(11);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto shuffled = v;
  shuffle(shuffled.begin(), shuffled.end(), rng);
  EXPECT_TRUE(std::is_permutation(v.begin(), v.end(), shuffled.begin()));
  EXPECT_NE(v, shuffled);  // astronomically unlikely to be identity
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { hits[i]++; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  pool.parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPool, NestedCallsRunSerially) {
  ThreadPool pool(2);
  std::atomic<int> total{0};
  pool.parallel_for(0, 4, [&](std::size_t) {
    pool.parallel_for(0, 10, [&](std::size_t) { total++; });
  });
  EXPECT_EQ(total.load(), 40);
}

TEST(ThreadPool, ChunkedVariantSeesContiguousRanges) {
  ThreadPool pool(4);
  std::atomic<std::size_t> covered{0};
  pool.parallel_for_chunked(0, 997, 10, [&](std::size_t lo, std::size_t hi) {
    EXPECT_LT(lo, hi);
    covered += hi - lo;
  });
  EXPECT_EQ(covered.load(), 997u);
}

TEST(Stats, MeanAndStddev) {
  const std::vector<float> v{1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(mean(v), 3.0);
  EXPECT_NEAR(stddev(v), std::sqrt(2.0), 1e-9);
}

TEST(Stats, PercentileMatchesNumpyConvention) {
  const std::vector<float> v{10, 20, 30, 40};
  EXPECT_FLOAT_EQ(percentile(v, 0.0), 10.0f);
  EXPECT_FLOAT_EQ(percentile(v, 1.0), 40.0f);
  EXPECT_FLOAT_EQ(percentile(v, 0.5), 25.0f);
}

TEST(Stats, PercentileEmptyIsZero) {
  const std::vector<float> empty;
  EXPECT_FLOAT_EQ(percentile(empty, 0.5), 0.0f);
}

TEST(Stats, EmpiricalCdfMonotone) {
  const std::vector<float> values{0.1f, 0.5f, 0.5f, 0.9f};
  const std::vector<float> grid{0.0f, 0.25f, 0.5f, 0.75f, 1.0f};
  const auto cdf = empirical_cdf(values, grid);
  ASSERT_EQ(cdf.size(), grid.size());
  EXPECT_DOUBLE_EQ(cdf.front(), 0.0);
  EXPECT_DOUBLE_EQ(cdf.back(), 1.0);
  for (std::size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
  EXPECT_DOUBLE_EQ(cdf[2], 0.75);  // 3 of 4 values <= 0.5
}

TEST(Stats, GeomeanOfEqualValues) {
  const std::vector<double> v{2.0, 2.0, 2.0};
  EXPECT_NEAR(geomean(v), 2.0, 1e-12);
}

TEST(Table, RendersHeaderAndRows) {
  Table t("demo");
  t.set_header({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row("beta", {2.5}, 1);
  const std::string s = t.to_string();
  EXPECT_NE(s.find("demo"), std::string::npos);
  EXPECT_NE(s.find("alpha"), std::string::npos);
  EXPECT_NE(s.find("2.5"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(Table, CsvEscapesCommas) {
  Table t("csv");
  t.set_header({"a"});
  t.add_row({"x,y"});
  EXPECT_NE(t.to_csv().find("\"x,y\""), std::string::npos);
}

}  // namespace
}  // namespace tilesparse
