#include <gtest/gtest.h>

#include <set>

#include "workload/datasets.hpp"
#include "workload/shapes.hpp"

namespace tilesparse {
namespace {

TEST(Shapes, BertHas72WeightMatrices) {
  const auto gemms = bert_base_gemms();
  EXPECT_EQ(gemms.size(), 72u);  // 12 layers x 6 — the Fig. 5 x-axis
}

TEST(Shapes, BertShapesMatchArchitecture) {
  const auto gemms = bert_base_gemms(128, 1);
  EXPECT_EQ(gemms[0].shape.m, 128u);
  EXPECT_EQ(gemms[0].shape.k, 768u);
  EXPECT_EQ(gemms[0].shape.n, 768u);
  // FFN-in is 768 -> 3072.
  EXPECT_EQ(gemms[4].shape.k, 768u);
  EXPECT_EQ(gemms[4].shape.n, 3072u);
}

TEST(Shapes, VggHas16Layers) {
  const auto gemms = vgg16_gemms();
  EXPECT_EQ(gemms.size(), 16u);  // 13 conv + 3 FC
  // conv1_1: 224*224 output pixels, K = 3*9, N = 64.
  EXPECT_EQ(gemms[0].shape.m, 224u * 224u);
  EXPECT_EQ(gemms[0].shape.k, 27u);
  EXPECT_EQ(gemms[0].shape.n, 64u);
}

TEST(Shapes, NmtGateDimensions) {
  const auto gemms = nmt_gemms();
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(gemms[i].shape.n, 2048u);  // 4 * hidden
  }
}

TEST(Shapes, TotalFlopsPositiveAndOrdered) {
  // VGG at batch 1 has far more FLOPs than BERT at seq 128 (conv heavy).
  EXPECT_GT(total_flops(vgg16_gemms()), total_flops(bert_base_gemms()));
}

TEST(ClusterImages, BatchShapesAndLabelRange) {
  ClusterImageDataset data(10, 3, 8, 8, 0.5f, 1);
  Rng rng(2);
  const auto batch = data.sample(32, rng);
  EXPECT_EQ(batch.x.rows(), 32u);
  EXPECT_EQ(batch.x.cols(), 3u * 8u * 8u);
  for (int y : batch.y) {
    EXPECT_GE(y, 0);
    EXPECT_LT(y, 10);
  }
}

TEST(ClusterImages, LowNoiseIsNearlySeparable) {
  // With tiny noise, nearest-prototype classification should be easy:
  // samples of different classes differ a lot more than same class.
  ClusterImageDataset data(4, 1, 8, 8, 0.05f, 3);
  Rng rng(4);
  const auto batch = data.sample(64, rng);
  // Same-class pairs should be closer than cross-class pairs on average.
  double same = 0.0, cross = 0.0;
  int same_n = 0, cross_n = 0;
  for (std::size_t i = 0; i < 64; ++i) {
    for (std::size_t j = i + 1; j < 64; ++j) {
      double d = 0.0;
      for (std::size_t f = 0; f < batch.x.cols(); ++f) {
        const double diff = batch.x(i, f) - batch.x(j, f);
        d += diff * diff;
      }
      if (batch.y[i] == batch.y[j]) {
        same += d;
        ++same_n;
      } else {
        cross += d;
        ++cross_n;
      }
    }
  }
  ASSERT_GT(same_n, 0);
  ASSERT_GT(cross_n, 0);
  EXPECT_LT(same / same_n, 0.5 * cross / cross_n);
}

TEST(TokenTeacher, DeterministicLabelsForSameTokens) {
  TokenTeacherDataset data(32, 8, 4, 16, 5);
  Rng rng1(6), rng2(6);
  const auto a = data.sample(16, rng1);
  const auto b = data.sample(16, rng2);
  EXPECT_EQ(a.tokens, b.tokens);
  EXPECT_EQ(a.y, b.y);
}

TEST(TokenTeacher, UsesAllClassesEventually) {
  TokenTeacherDataset data(64, 16, 4, 32, 7);
  Rng rng(8);
  const auto batch = data.sample(512, rng);
  std::set<int> seen(batch.y.begin(), batch.y.end());
  EXPECT_GE(seen.size(), 3u);
}

TEST(SpanData, LabelPointsAtQueryToken) {
  SpanDataset data(32, 12, 16, 9);
  Rng rng(10);
  const auto batch = data.sample(64, rng);
  for (std::size_t i = 0; i < batch.batch; ++i) {
    const int pos = batch.y[i];
    EXPECT_EQ(batch.tokens[i * batch.seq + pos], 0);  // query token id 0
    // No other position holds the query token.
    for (std::size_t t = 0; t < batch.seq; ++t) {
      if (static_cast<int>(t) != pos) {
        EXPECT_NE(batch.tokens[i * batch.seq + t], 0);
      }
    }
  }
}

TEST(ReverseData, TargetIsReversedSource) {
  ReverseDataset data(16, 6, 11);
  Rng rng(12);
  const auto batch = data.sample(8, rng);
  for (std::size_t b = 0; b < batch.batch; ++b)
    for (std::size_t t = 0; t < batch.seq; ++t)
      EXPECT_EQ(batch.tgt[b * batch.seq + t],
                batch.src[b * batch.seq + (batch.seq - 1 - t)]);
}

}  // namespace
}  // namespace tilesparse
