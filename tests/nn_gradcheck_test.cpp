// Finite-difference gradient checks for every differentiable module.
// Loss used: L = sum(forward(x) .* R) with a fixed random R, so
// dL/dy = R and all parameter gradients can be checked numerically.

#include <gtest/gtest.h>

#include <cmath>
#include <functional>

#include "nn/attention.hpp"
#include "nn/conv.hpp"
#include "nn/layers.hpp"
#include "nn/lstm.hpp"
#include "tensor/ops.hpp"
#include "util/rng.hpp"

namespace tilesparse {
namespace {

float dot_loss(const MatrixF& y, const MatrixF& r) {
  float loss = 0.0f;
  for (std::size_t i = 0; i < y.size(); ++i)
    loss += y.data()[i] * r.data()[i];
  return loss;
}

/// Checks analytic `grad` of `param` against central differences of
/// `loss_fn` (which must re-run forward using the current param value).
void check_param_gradient(MatrixF& param, const MatrixF& grad,
                          const std::function<float()>& loss_fn,
                          float tolerance, int probes = 24) {
  Rng rng(99);
  const float eps = 1e-2f;
  for (int probe = 0; probe < probes; ++probe) {
    const auto idx = static_cast<std::size_t>(rng.below(param.size()));
    const float saved = param.data()[idx];
    param.data()[idx] = saved + eps;
    const float up = loss_fn();
    param.data()[idx] = saved - eps;
    const float down = loss_fn();
    param.data()[idx] = saved;
    const float numeric = (up - down) / (2.0f * eps);
    EXPECT_NEAR(grad.data()[idx], numeric,
                tolerance * (1.0f + std::fabs(numeric)))
        << "index " << idx;
  }
}

TEST(GradCheck, LinearWeightBiasAndInput) {
  Rng rng(1);
  Linear lin("l", 6, 4, rng);
  MatrixF x(5, 6), r(5, 4);
  fill_normal(x, rng);
  fill_normal(r, rng);

  const MatrixF y = lin.forward(x);
  const MatrixF dx = lin.backward(r);

  auto loss = [&] { return dot_loss(lin.forward(x), r); };
  check_param_gradient(lin.weight().value, lin.weight().grad, loss, 2e-2f);
  check_param_gradient(lin.bias().value, lin.bias().grad, loss, 2e-2f);
  check_param_gradient(x, dx, loss, 2e-2f);
}

TEST(GradCheck, GeluInput) {
  Rng rng(2);
  Gelu gelu;
  MatrixF x(4, 8), r(4, 8);
  fill_normal(x, rng);
  fill_normal(r, rng);
  gelu.forward(x);
  const MatrixF dx = gelu.backward(r);
  auto loss = [&] { return dot_loss(gelu.forward(x), r); };
  check_param_gradient(x, dx, loss, 2e-2f);
}

TEST(GradCheck, LayerNormAll) {
  Rng rng(3);
  LayerNorm ln("ln", 12);
  MatrixF x(3, 12), r(3, 12);
  fill_normal(x, rng);
  fill_normal(r, rng);
  ln.forward(x);
  const MatrixF dx = ln.backward(r);
  auto loss = [&] { return dot_loss(ln.forward(x), r); };
  auto params = ln.params();
  check_param_gradient(params[0]->value, params[0]->grad, loss, 3e-2f);
  check_param_gradient(params[1]->value, params[1]->grad, loss, 3e-2f);
  check_param_gradient(x, dx, loss, 3e-2f);
}

TEST(GradCheck, Conv3x3WeightAndInput) {
  Rng rng(4);
  Conv3x3 conv("c", 2, 3, 4, 4, rng);
  MatrixF x(2, 2 * 4 * 4), r(2, 3 * 4 * 4);
  fill_normal(x, rng);
  fill_normal(r, rng);
  conv.forward(x);
  const MatrixF dx = conv.backward(r);
  auto loss = [&] { return dot_loss(conv.forward(x), r); };
  auto params = conv.params();
  check_param_gradient(params[0]->value, params[0]->grad, loss, 3e-2f);
  check_param_gradient(params[1]->value, params[1]->grad, loss, 3e-2f);
  check_param_gradient(x, dx, loss, 3e-2f);
}

TEST(GradCheck, AvgPoolInput) {
  AvgPool2 pool(2, 4, 4);
  Rng rng(5);
  MatrixF x(2, 2 * 4 * 4), r(2, 2 * 2 * 2);
  fill_normal(x, rng);
  fill_normal(r, rng);
  pool.forward(x);
  const MatrixF dx = pool.backward(r);
  auto loss = [&] { return dot_loss(pool.forward(x), r); };
  check_param_gradient(x, dx, loss, 1e-2f);
}

TEST(GradCheck, MultiHeadAttentionAll) {
  const std::size_t dim = 8, heads = 2, seq = 3, batch = 2;
  Rng rng(6);
  MultiHeadAttention mha("mha", dim, heads, seq, rng);
  MatrixF x(batch * seq, dim), r(batch * seq, dim);
  fill_normal(x, rng, 0.0f, 0.5f);
  fill_normal(r, rng);
  mha.forward(x);
  const MatrixF dx = mha.backward(r);
  auto loss = [&] { return dot_loss(mha.forward(x), r); };
  for (Param* p : mha.params()) {
    p->zero_grad();
  }
  mha.forward(x);
  mha.backward(r);
  for (Param* p : mha.params()) {
    check_param_gradient(p->value, p->grad, loss, 5e-2f, 8);
  }
  check_param_gradient(x, dx, loss, 5e-2f, 12);
}

TEST(GradCheck, LstmAll) {
  const std::size_t input = 5, hidden = 4, seq = 3, batch = 2;
  Rng rng(7);
  Lstm lstm("lstm", input, hidden, rng);
  MatrixF x(batch * seq, input), r(batch * seq, hidden);
  fill_normal(x, rng, 0.0f, 0.5f);
  fill_normal(r, rng);
  lstm.forward(x, seq);
  const MatrixF dx = lstm.backward(r);
  auto loss = [&] { return dot_loss(lstm.forward(x, seq), r); };
  for (Param* p : lstm.params()) p->zero_grad();
  lstm.forward(x, seq);
  lstm.backward(r);
  for (Param* p : lstm.params()) {
    check_param_gradient(p->value, p->grad, loss, 5e-2f, 10);
  }
  check_param_gradient(x, dx, loss, 5e-2f, 12);
}

TEST(GradCheck, EmbeddingTable) {
  Rng rng(8);
  Embedding embed("e", 6, 4, rng);
  const std::vector<int> tokens{1, 4, 1};
  MatrixF r(3, 4);
  fill_normal(r, rng);
  embed.forward(tokens);
  embed.backward(r);
  Param* table = embed.params()[0];
  auto loss = [&] { return dot_loss(embed.forward(tokens), r); };
  check_param_gradient(table->value, table->grad, loss, 1e-2f);
}

}  // namespace
}  // namespace tilesparse
